//! The open consensus-substrate API: the store's pluggable cell layer.
//!
//! The paper's hierarchy corollary (§5.2) says the fault-tolerant
//! constructions compose over *any* consensus substrate — they only
//! need objects with the assumed interface and fault envelope. The
//! store used to hard-code that substrate as a closed three-variant
//! enum; this module turns it into an open trait plus a process-wide
//! registry, so a new substrate (a CAS built from weaker primitives, an
//! aggregation object, a future hardware model) plugs in by
//! implementing [`Substrate`] and calling [`register`] — and every
//! consumer (the store builder, soak, netbench, the DST, `report`)
//! resolves it by name through the same [`FromStr`] impl, with the
//! same conformance tests run against it for free.
//!
//! A substrate answers four questions:
//!
//! 1. **Construction** — [`Substrate::make_cell`] builds one consensus
//!    cell from the shard's fault environment (via [`CellCtx`], which
//!    carries the shard's live fault knob, shared stats, and
//!    deterministic per-cell salts).
//! 2. **Accounting** — [`Substrate::objects_per_cell`] and
//!    [`Substrate::consensus_number`] feed reports and the conformance
//!    suite.
//! 3. **Fault envelope** — [`Substrate::tolerated_kinds`] declares
//!    which functional-fault kinds the construction survives;
//!    [`Substrate::validate`] refuses environments outside it (the
//!    rules the old enum hard-coded: no invisible faults, silent needs
//!    a finite budget `t`, …).
//! 4. **Expectation** — [`Substrate::expected_consistent`] says whether
//!    a store on this substrate should end [`Store::verify`]-consistent
//!    under its declared faults (`false` only for deliberately broken
//!    witnesses like `naive`).
//!
//! Built-in substrates:
//!
//! | name | cell construction | primitives | tolerates |
//! |---|---|---|---|
//! | `reliable` | Herlihy over one correct CAS | hardware CAS | — (nothing injected) |
//! | `robust` | cascade (Fig. 2) / bounded retry (§3.4) | hardware CAS | overriding, silent, arbitrary |
//! | `naive` | Herlihy straight over a faulty object | hardware CAS | nothing (the broken witness) |
//! | `kw-cas` | Herlihy over a KW CAS built from max-write/half-max | consensus number 1 | — (nothing injected) |
//! | `kw-robust` | cascade / retry over faulty KW cells | consensus number 1 | overriding, silent |
//! | `wfa` | write-and-f-array aggregation + reliable arbitration | consensus number 2 | — (nothing injected) |
//! | `wfa-robust` | write-and-f-array aggregation + robust arbitration | consensus number 2 | overriding, silent, arbitrary |
//!
//! `kw-robust` declares **arbitrary** intolerable not because the
//! cascade would fail but because the fault itself is unrepresentable:
//! an arbitrary fault swaps full-width junk into the cell, and a KW
//! word only encodes `⊥` or 32-bit inputs — the substrate refuses the
//! environment rather than silently truncating the fault model.

use crate::cells::{FaultConfig, FaultKnob, GuardedCascadeConsensus, KnobPolicy, NaiveConsensus};
use crate::ConfigError;
use ff_cas::{splitmix64, AtomicCasArray, EnsembleStats, FaultyCasArray, KwCasArray, RawCas};
use ff_consensus::{Consensus, HerlihyConsensus, SilentRetryConsensus, WafConsensus};
use ff_spec::{Bound, FaultKind};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a substrate may use while constructing one cell: the
/// shard's fault environment, its live knob, its shared stats sink, and
/// a per-cell salt for deterministic fault streams.
pub struct CellCtx<'a> {
    fault: &'a FaultConfig,
    knob: &'a Arc<FaultKnob>,
    stats: &'a Arc<EnsembleStats>,
    salt: u64,
}

impl<'a> CellCtx<'a> {
    pub(crate) fn new(
        fault: &'a FaultConfig,
        knob: &'a Arc<FaultKnob>,
        stats: &'a Arc<EnsembleStats>,
        salt: u64,
    ) -> Self {
        CellCtx {
            fault,
            knob,
            stats,
            salt,
        }
    }

    /// The shard's fault environment.
    pub fn fault(&self) -> &FaultConfig {
        self.fault
    }

    /// The silent-fault budget `t`, which [`Substrate::validate`] has
    /// already guaranteed finite for silent environments.
    pub fn silent_budget(&self) -> u64 {
        match self.fault.t {
            Bound::Finite(t) => t,
            Bound::Unbounded => unreachable!("validate() rejects unbounded silent budgets"),
        }
    }

    /// A fault-injecting ensemble of `objects` fresh atomic cells, the
    /// first `faulty` of them faulty, wired to the shard's knob and
    /// stats. The injection stream is deterministic in the shard seed
    /// and this cell's salt.
    pub fn faulty_ensemble(&self, objects: usize, faulty: usize) -> Arc<FaultyCasArray> {
        self.faulty_builder(objects, faulty).build().into()
    }

    /// Like [`CellCtx::faulty_ensemble`], but injecting over
    /// caller-supplied inner cells — the seam that composes the paper's
    /// constructions over *weaker* substrates (`cells.len()` must equal
    /// `objects`).
    pub fn faulty_over(&self, cells: Vec<Arc<dyn RawCas>>, faulty: usize) -> Arc<FaultyCasArray> {
        let objects = cells.len();
        self.faulty_builder(objects, faulty)
            .over_cells(cells)
            .build()
            .into()
    }

    fn faulty_builder(&self, objects: usize, faulty: usize) -> ff_cas::FaultyCasArrayBuilder {
        FaultyCasArray::builder(objects)
            .kind(self.fault.kind)
            .faulty_first(faulty)
            .per_object(self.fault.t)
            .policy(KnobPolicy {
                knob: Arc::clone(self.knob),
                salt: splitmix64(self.salt),
            })
            .record_history(false)
            .shared_stats(Arc::clone(self.stats))
    }
}

/// A pluggable consensus substrate: how one shard cell is built, what
/// it costs, and which functional faults it survives.
pub trait Substrate: Send + Sync {
    /// The registry/CLI/wire name (also the only naming source for
    /// STATS frames, BENCH JSONs, and report tables).
    fn name(&self) -> &'static str;

    /// One line for docs and report footnotes.
    fn describe(&self) -> &'static str;

    /// Consensus number of the primitive class the cells are built
    /// from: `None` for hardware CAS (unbounded), `Some(k)` for a
    /// construction over consensus-number-`k` primitives.
    fn consensus_number(&self) -> Option<u32>;

    /// Whether this substrate runs its cells over injected faults.
    fn injects_faults(&self) -> bool;

    /// Fault kinds the construction tolerates (empty for substrates
    /// that never inject, and for the broken witness).
    fn tolerated_kinds(&self) -> &'static [FaultKind];

    /// Fault kinds actually injected under `rotate_kinds` — defaults to
    /// the tolerated set; the broken witness overrides this to inject
    /// kinds it does *not* tolerate.
    fn injected_kinds(&self) -> &'static [FaultKind] {
        self.tolerated_kinds()
    }

    /// Should a store on this substrate end `Store::verify`-consistent
    /// under its declared fault envelope? `false` only for deliberately
    /// broken witnesses.
    fn expected_consistent(&self) -> bool {
        true
    }

    /// Shared objects one cell consumes (for reports and the
    /// conformance suite's accounting check).
    fn objects_per_cell(&self, fault: &FaultConfig) -> usize;

    /// Objects inside the fault-injection ensemble (sizes the shard's
    /// shared stats). Differs from [`Substrate::objects_per_cell`] only
    /// when a substrate layers fault-free objects on top of the
    /// injected ones.
    fn injected_objects(&self, fault: &FaultConfig) -> usize {
        self.objects_per_cell(fault)
    }

    /// Refuse fault environments outside this substrate's envelope
    /// (the checks `StoreConfig::builder` surfaces as [`ConfigError`]s).
    fn validate(&self, fault: &FaultConfig) -> Result<(), ConfigError>;

    /// Build one consensus cell.
    fn make_cell(&self, ctx: &CellCtx) -> Arc<dyn Consensus>;
}

/// The robust-construction rules shared by every substrate that runs
/// the paper's fault-tolerant protocols over injected faults.
fn validate_robust(
    tolerated: &'static [FaultKind],
    fault: &FaultConfig,
) -> Result<(), ConfigError> {
    if fault.f == 0 {
        return Err(ConfigError::RobustNeedsFaultyObjects);
    }
    if !tolerated.contains(&fault.kind) {
        return Err(ConfigError::IntolerableKind(fault.kind));
    }
    if fault.kind == FaultKind::Silent && !matches!(fault.t, Bound::Finite(_)) {
        return Err(ConfigError::SilentNeedsFiniteBudget);
    }
    Ok(())
}

/// Objects a robust construction needs: `f + 1` for the cascade, one
/// for the silent-retry protocol.
fn robust_objects(fault: &FaultConfig) -> usize {
    if fault.kind == FaultKind::Silent {
        1
    } else {
        fault.f + 1
    }
}

/// The paper's construction choice over an injected ensemble: bounded
/// retry for silent environments, the guarded Figure 2 cascade
/// otherwise.
fn robust_cell(ctx: &CellCtx, ensemble: Arc<FaultyCasArray>) -> Arc<dyn Consensus> {
    if ctx.fault().kind == FaultKind::Silent {
        Arc::new(SilentRetryConsensus::new(ensemble, ctx.silent_budget()))
    } else {
        Arc::new(GuardedCascadeConsensus::new(ensemble, ctx.fault().f))
    }
}

const ALL_CLASSIC: &[FaultKind] = &[
    FaultKind::Overriding,
    FaultKind::Silent,
    FaultKind::Arbitrary,
];
const NO_ARBITRARY: &[FaultKind] = &[FaultKind::Overriding, FaultKind::Silent];

/// `reliable` — Herlihy over one correct hardware CAS; the fault-free
/// baseline.
struct ReliableSubstrate;

impl Substrate for ReliableSubstrate {
    fn name(&self) -> &'static str {
        "reliable"
    }
    fn describe(&self) -> &'static str {
        "Herlihy consensus over one correct hardware CAS (fault-free baseline)"
    }
    fn consensus_number(&self) -> Option<u32> {
        None
    }
    fn injects_faults(&self) -> bool {
        false
    }
    fn tolerated_kinds(&self) -> &'static [FaultKind] {
        &[]
    }
    fn objects_per_cell(&self, _fault: &FaultConfig) -> usize {
        1
    }
    fn validate(&self, _fault: &FaultConfig) -> Result<(), ConfigError> {
        Ok(())
    }
    fn make_cell(&self, _ctx: &CellCtx) -> Arc<dyn Consensus> {
        Arc::new(HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1))))
    }
}

/// `robust` — the paper's fault-tolerant constructions over injected
/// hardware CAS.
struct RobustSubstrate;

impl Substrate for RobustSubstrate {
    fn name(&self) -> &'static str {
        "robust"
    }
    fn describe(&self) -> &'static str {
        "cascade (Fig. 2) / bounded retry (S3.4) over injected-faulty hardware CAS"
    }
    fn consensus_number(&self) -> Option<u32> {
        None
    }
    fn injects_faults(&self) -> bool {
        true
    }
    fn tolerated_kinds(&self) -> &'static [FaultKind] {
        ALL_CLASSIC
    }
    fn objects_per_cell(&self, fault: &FaultConfig) -> usize {
        robust_objects(fault)
    }
    fn validate(&self, fault: &FaultConfig) -> Result<(), ConfigError> {
        validate_robust(ALL_CLASSIC, fault)
    }
    fn make_cell(&self, ctx: &CellCtx) -> Arc<dyn Consensus> {
        let objects = robust_objects(ctx.fault());
        let faulty = if ctx.fault().kind == FaultKind::Silent {
            1
        } else {
            ctx.fault().f
        };
        robust_cell(ctx, ctx.faulty_ensemble(objects, faulty))
    }
}

/// `naive` — Herlihy straight over a faulty object: the construction
/// the paper proves broken, kept as the divergence witness.
struct NaiveSubstrate;

impl Substrate for NaiveSubstrate {
    fn name(&self) -> &'static str {
        "naive"
    }
    fn describe(&self) -> &'static str {
        "Herlihy straight over one injected-faulty CAS (the broken witness, E10)"
    }
    fn consensus_number(&self) -> Option<u32> {
        None
    }
    fn injects_faults(&self) -> bool {
        true
    }
    fn tolerated_kinds(&self) -> &'static [FaultKind] {
        &[]
    }
    fn injected_kinds(&self) -> &'static [FaultKind] {
        ALL_CLASSIC
    }
    fn expected_consistent(&self) -> bool {
        false
    }
    fn objects_per_cell(&self, _fault: &FaultConfig) -> usize {
        1
    }
    fn validate(&self, _fault: &FaultConfig) -> Result<(), ConfigError> {
        Ok(())
    }
    fn make_cell(&self, ctx: &CellCtx) -> Arc<dyn Consensus> {
        Arc::new(NaiveConsensus::new(ctx.faulty_ensemble(1, 1)))
    }
}

/// `kw-cas` — Herlihy over a CAS object built from consensus-number-1
/// primitives (max-write + half-max), no injection: measures the pure
/// construction cost of the weaker substrate.
struct KwCasSubstrate;

impl Substrate for KwCasSubstrate {
    fn name(&self) -> &'static str {
        "kw-cas"
    }
    fn describe(&self) -> &'static str {
        "Herlihy over a Khanchandani-Wattenhofer CAS from max-write/half-max words"
    }
    fn consensus_number(&self) -> Option<u32> {
        Some(1)
    }
    fn injects_faults(&self) -> bool {
        false
    }
    fn tolerated_kinds(&self) -> &'static [FaultKind] {
        &[]
    }
    fn objects_per_cell(&self, _fault: &FaultConfig) -> usize {
        1
    }
    fn validate(&self, _fault: &FaultConfig) -> Result<(), ConfigError> {
        Ok(())
    }
    fn make_cell(&self, _ctx: &CellCtx) -> Arc<dyn Consensus> {
        Arc::new(HerlihyConsensus::new(Arc::new(KwCasArray::new(1))))
    }
}

/// `kw-robust` — the paper's constructions composed over faulty KW
/// cells: the hierarchy corollary (§5.2) made executable. Arbitrary
/// faults are refused because their full-width junk is unrepresentable
/// in a KW word (see the module docs).
struct KwRobustSubstrate;

impl Substrate for KwRobustSubstrate {
    fn name(&self) -> &'static str {
        "kw-robust"
    }
    fn describe(&self) -> &'static str {
        "cascade / bounded retry over injected-faulty KW cells (robust over a weaker substrate)"
    }
    fn consensus_number(&self) -> Option<u32> {
        Some(1)
    }
    fn injects_faults(&self) -> bool {
        true
    }
    fn tolerated_kinds(&self) -> &'static [FaultKind] {
        NO_ARBITRARY
    }
    fn objects_per_cell(&self, fault: &FaultConfig) -> usize {
        robust_objects(fault)
    }
    fn validate(&self, fault: &FaultConfig) -> Result<(), ConfigError> {
        validate_robust(NO_ARBITRARY, fault)
    }
    fn make_cell(&self, ctx: &CellCtx) -> Arc<dyn Consensus> {
        let objects = robust_objects(ctx.fault());
        let faulty = if ctx.fault().kind == FaultKind::Silent {
            1
        } else {
            ctx.fault().f
        };
        let inner = KwCasArray::new(objects).into_raw_cells();
        robust_cell(ctx, ctx.faulty_over(inner, faulty))
    }
}

/// Cells a write-and-f-array cell aggregates over before arbitration.
const WFA_SLOTS: usize = 8;

/// `wfa` — write-and-f-array aggregation (consensus-number-2 object) in
/// front of one reliable arbitration CAS, no injection.
struct WfaSubstrate;

impl Substrate for WfaSubstrate {
    fn name(&self) -> &'static str {
        "wfa"
    }
    fn describe(&self) -> &'static str {
        "write-and-f-array aggregation (Obryk) + reliable single-CAS arbitration"
    }
    fn consensus_number(&self) -> Option<u32> {
        Some(2)
    }
    fn injects_faults(&self) -> bool {
        false
    }
    fn tolerated_kinds(&self) -> &'static [FaultKind] {
        &[]
    }
    fn objects_per_cell(&self, _fault: &FaultConfig) -> usize {
        2
    }
    fn validate(&self, _fault: &FaultConfig) -> Result<(), ConfigError> {
        Ok(())
    }
    fn make_cell(&self, _ctx: &CellCtx) -> Arc<dyn Consensus> {
        let arb = Arc::new(HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1))));
        Arc::new(WafConsensus::new(WFA_SLOTS, arb))
    }
}

/// `wfa-robust` — write-and-f-array aggregation in front of a *robust*
/// arbitration stage over injected faults: the aggregation funnel is
/// fault-free, the decision object lies.
struct WfaRobustSubstrate;

impl Substrate for WfaRobustSubstrate {
    fn name(&self) -> &'static str {
        "wfa-robust"
    }
    fn describe(&self) -> &'static str {
        "write-and-f-array aggregation + cascade / bounded-retry arbitration over injected faults"
    }
    fn consensus_number(&self) -> Option<u32> {
        Some(2)
    }
    fn injects_faults(&self) -> bool {
        true
    }
    fn tolerated_kinds(&self) -> &'static [FaultKind] {
        ALL_CLASSIC
    }
    fn objects_per_cell(&self, fault: &FaultConfig) -> usize {
        1 + robust_objects(fault)
    }
    fn injected_objects(&self, fault: &FaultConfig) -> usize {
        robust_objects(fault)
    }
    fn validate(&self, fault: &FaultConfig) -> Result<(), ConfigError> {
        validate_robust(ALL_CLASSIC, fault)
    }
    fn make_cell(&self, ctx: &CellCtx) -> Arc<dyn Consensus> {
        let objects = robust_objects(ctx.fault());
        let faulty = if ctx.fault().kind == FaultKind::Silent {
            1
        } else {
            ctx.fault().f
        };
        let arb = robust_cell(ctx, ctx.faulty_ensemble(objects, faulty));
        Arc::new(WafConsensus::new(WFA_SLOTS, arb))
    }
}

/// The process-wide substrate registry, seeded with the built-ins on
/// first touch.
fn registry() -> &'static Mutex<Vec<Arc<dyn Substrate>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<dyn Substrate>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(vec![
            Arc::new(ReliableSubstrate) as Arc<dyn Substrate>,
            Arc::new(RobustSubstrate),
            Arc::new(NaiveSubstrate),
            Arc::new(KwCasSubstrate),
            Arc::new(KwRobustSubstrate),
            Arc::new(WfaSubstrate),
            Arc::new(WfaRobustSubstrate),
        ])
    })
}

/// A registration was refused because the name is already taken —
/// names are the wire/CLI identity, so they must be unique.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DuplicateSubstrate(pub &'static str);

impl std::fmt::Display for DuplicateSubstrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a substrate named {:?} is already registered", self.0)
    }
}

impl std::error::Error for DuplicateSubstrate {}

/// Register a third-party substrate, making it resolvable by name from
/// every CLI and from [`Backend::from_str`].
pub fn register(substrate: Arc<dyn Substrate>) -> Result<(), DuplicateSubstrate> {
    let mut reg = registry().lock().expect("substrate registry poisoned");
    if reg.iter().any(|s| s.name() == substrate.name()) {
        return Err(DuplicateSubstrate(substrate.name()));
    }
    reg.push(substrate);
    Ok(())
}

/// Every registered substrate, as backend handles, in registration
/// order (built-ins first).
pub fn all_backends() -> Vec<Backend> {
    registry()
        .lock()
        .expect("substrate registry poisoned")
        .iter()
        .map(|s| Backend(Arc::clone(s)))
        .collect()
}

/// The names of every registered substrate, in registration order.
pub fn substrate_names() -> Vec<&'static str> {
    registry()
        .lock()
        .expect("substrate registry poisoned")
        .iter()
        .map(|s| s.name())
        .collect()
}

/// A name did not resolve against the substrate registry. The message
/// lists what would have.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownSubstrate {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name that would have resolved.
    pub valid: Vec<&'static str>,
}

impl std::fmt::Display for UnknownSubstrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown substrate {:?}; valid substrates: {}",
            self.name,
            self.valid.join(", ")
        )
    }
}

impl std::error::Error for UnknownSubstrate {}

/// A handle on one registered substrate — the store's backend choice.
///
/// Cheap to clone (an `Arc`), compared by substrate name, printed as
/// the substrate name, parsed from the substrate name. The former
/// closed enum's three variants survive as [`Backend::reliable`],
/// [`Backend::robust`] and [`Backend::naive`] with unchanged wire/CLI
/// names.
#[derive(Clone)]
pub struct Backend(Arc<dyn Substrate>);

impl Backend {
    fn builtin(name: &str) -> Backend {
        name.parse()
            .expect("built-in substrates are always registered")
    }

    /// The fault-free baseline (hardware CAS, nothing injected).
    pub fn reliable() -> Backend {
        Backend::builtin("reliable")
    }

    /// The paper's fault-tolerant constructions over injected faults.
    pub fn robust() -> Backend {
        Backend::builtin("robust")
    }

    /// The deliberately broken witness (Herlihy over a faulty object).
    pub fn naive() -> Backend {
        Backend::builtin("naive")
    }

    /// CAS from consensus-number-1 primitives, nothing injected.
    pub fn kw_cas() -> Backend {
        Backend::builtin("kw-cas")
    }

    /// The robust constructions composed over faulty KW cells.
    pub fn kw_robust() -> Backend {
        Backend::builtin("kw-robust")
    }

    /// Write-and-f-array aggregation with reliable arbitration.
    pub fn wfa() -> Backend {
        Backend::builtin("wfa")
    }

    /// Write-and-f-array aggregation with robust arbitration over
    /// injected faults.
    pub fn wfa_robust() -> Backend {
        Backend::builtin("wfa-robust")
    }

    /// The substrate's registry/CLI/wire name (the single naming
    /// source for STATS frames, BENCH JSONs, and report tables).
    pub fn name(&self) -> &'static str {
        self.0.name()
    }

    /// The underlying substrate.
    pub fn substrate(&self) -> &dyn Substrate {
        self.0.as_ref()
    }

    /// See [`Substrate::describe`].
    pub fn describe(&self) -> &'static str {
        self.0.describe()
    }

    /// See [`Substrate::consensus_number`].
    pub fn consensus_number(&self) -> Option<u32> {
        self.0.consensus_number()
    }

    /// See [`Substrate::injects_faults`].
    pub fn injects_faults(&self) -> bool {
        self.0.injects_faults()
    }

    /// See [`Substrate::tolerated_kinds`].
    pub fn tolerated_kinds(&self) -> &'static [FaultKind] {
        self.0.tolerated_kinds()
    }

    /// See [`Substrate::injected_kinds`].
    pub fn injected_kinds(&self) -> &'static [FaultKind] {
        self.0.injected_kinds()
    }

    /// See [`Substrate::expected_consistent`].
    pub fn expected_consistent(&self) -> bool {
        self.0.expected_consistent()
    }

    /// See [`Substrate::objects_per_cell`].
    pub fn objects_per_cell(&self, fault: &FaultConfig) -> usize {
        self.0.objects_per_cell(fault)
    }

    /// See [`Substrate::validate`].
    pub fn validate(&self, fault: &FaultConfig) -> Result<(), ConfigError> {
        self.0.validate(fault)
    }
}

impl PartialEq for Backend {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Eq for Backend {}

impl std::hash::Hash for Backend {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Backend").field(&self.name()).finish()
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = UnknownSubstrate;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Resolve and *release* the registry lock before building the
        // error: `substrate_names` takes the same lock.
        let found = registry()
            .lock()
            .expect("substrate registry poisoned")
            .iter()
            .find(|sub| sub.name() == s)
            .map(|sub| Backend(Arc::clone(sub)));
        found.ok_or_else(|| UnknownSubstrate {
            name: s.to_string(),
            valid: substrate_names(),
        })
    }
}

/// The per-shard cell factory: owns the shard's fault knob and the
/// shared stats every cell aggregates into, and delegates construction
/// to the shard's [`Substrate`].
pub struct ShardCells {
    backend: Backend,
    fault: FaultConfig,
    knob: Arc<FaultKnob>,
    stats: Arc<EnsembleStats>,
    next_salt: AtomicU64,
}

impl ShardCells {
    /// A factory for one shard. `seed` derives every cell's fault
    /// stream deterministically. Panics on a fault environment the
    /// substrate refuses — build through `StoreConfig::builder` to get
    /// the [`ConfigError`] instead.
    pub fn new(backend: Backend, fault: FaultConfig, seed: u64) -> Self {
        if let Err(e) = backend.validate(&fault) {
            panic!("{e}");
        }
        let objects = backend.substrate().injected_objects(&fault);
        ShardCells {
            backend,
            knob: FaultKnob::new(fault.rate, seed),
            stats: Arc::new(EnsembleStats::new(objects)),
            fault,
            next_salt: AtomicU64::new(0),
        }
    }

    /// The live fault-rate knob for this shard.
    pub fn knob(&self) -> Arc<FaultKnob> {
        Arc::clone(&self.knob)
    }

    /// The shard-wide aggregated operation/fault counters.
    pub fn stats(&self) -> Arc<EnsembleStats> {
        Arc::clone(&self.stats)
    }

    /// The injected fault kind.
    pub fn fault_kind(&self) -> FaultKind {
        self.fault.kind
    }

    /// The backend this shard runs on.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }
}

impl ff_universal::CellFactory for ShardCells {
    fn make(&self) -> Arc<dyn Consensus> {
        let salt = self.next_salt.fetch_add(1, Ordering::Relaxed);
        let ctx = CellCtx::new(&self.fault, &self.knob, &self.stats, salt);
        self.backend.substrate().make_cell(&ctx)
    }

    fn name(&self) -> &'static str {
        self.backend.name()
    }
}
