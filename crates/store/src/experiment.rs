//! E15 — the store-level soak: robust shards stay consistent under
//! live functional faults, naive shards diverge.
//!
//! This is the system-scale payoff of the paper: Theorem-level
//! per-object guarantees (Sections 4–6) compose into a whole store
//! whose every shard stays linearizable while faults are injected,
//! whereas a store built on fault-oblivious Herlihy consensus visibly
//! corrupts. "Pass" means both arms matched their prediction.

use crate::soak::{run_soak, SoakConfig};
use crate::Backend;
use ff_workload::{Experiment, ExperimentResult, Table};

/// E15: sharded-store soak, robust vs naive backends.
pub struct E15StoreSoak;

impl Experiment for E15StoreSoak {
    fn id(&self) -> &'static str {
        "e15"
    }

    fn title(&self) -> &'static str {
        "Sharded store soak: robust shards consistent, naive shards diverge"
    }

    fn run(&self) -> ExperimentResult {
        let mut table = Table::new(
            "store soak (threads=3, shards=3, mixed fault kinds)",
            &[
                "backend",
                "fault rate",
                "ops",
                "checkpoints",
                "max retained",
                "consistent",
            ],
        );
        let mut notes = Vec::new();

        let robust = run_soak(&SoakConfig {
            threads: 3,
            shards: 3,
            secs: 0.5,
            fault_rate: 0.25,
            backend: Backend::robust(),
            checkpoint_interval: 16,
            ..SoakConfig::default()
        });
        table.push_row(&[
            "robust".to_string(),
            "0.25".to_string(),
            robust.metrics.total_ops().to_string(),
            robust
                .consistency
                .iter()
                .map(|s| s.checkpoints)
                .sum::<u64>()
                .to_string(),
            robust.max_retained_during_run.to_string(),
            robust.consistent.to_string(),
        ]);

        // The naive arm is probabilistic (a junk overwrite has to land
        // where replicas disagree about it), so retry over seeds with a
        // cap; the paper's claim is existential — naive consensus *can*
        // lose validity, and a handful of seeds at full fault rate
        // reliably exhibits it.
        let mut naive_diverged = false;
        let mut naive_ops = 0;
        for seed in 0..12 {
            let naive = run_soak(&SoakConfig {
                threads: 3,
                shards: 3,
                secs: 0.2,
                fault_rate: 1.0,
                backend: Backend::naive(),
                checkpoint_interval: 16,
                seed: 0xE15 + seed,
                ..SoakConfig::default()
            });
            naive_ops += naive.metrics.total_ops();
            if !naive.consistent {
                naive_diverged = true;
                table.push_row(&[
                    "naive".to_string(),
                    "1.00".to_string(),
                    naive.metrics.total_ops().to_string(),
                    naive
                        .consistency
                        .iter()
                        .map(|s| s.checkpoints)
                        .sum::<u64>()
                        .to_string(),
                    naive.max_retained_during_run.to_string(),
                    naive.consistent.to_string(),
                ]);
                notes.push(format!(
                    "naive backend diverged at seed offset {seed} (shards {:?})",
                    naive
                        .consistency
                        .iter()
                        .filter(|s| !s.consistent)
                        .map(|s| s.shard)
                        .collect::<Vec<_>>()
                ));
                break;
            }
        }
        if !naive_diverged {
            notes.push(format!(
                "naive backend stayed consistent across 12 seeds ({naive_ops} ops) — violation not observed"
            ));
        }
        notes.push(format!(
            "robust arm: {} observable faults injected, retained log ≤ {} during run",
            robust
                .metrics
                .faults
                .iter()
                .map(|f| f.observable)
                .sum::<u64>(),
            robust.max_retained_during_run
        ));

        ExperimentResult {
            id: "e15".into(),
            title: self.title().into(),
            paper_ref: "Sections 4–6 composed at system scale".into(),
            tables: vec![table],
            notes,
            pass: robust.consistent && naive_diverged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_passes() {
        let result = E15StoreSoak.run();
        assert!(result.pass, "E15 failed:\n{}", result.render());
    }
}
