//! Store observability: lock-free operation/fault counters and
//! fixed-bucket latency histograms, exported as an ASCII table and as
//! JSON (through `ff-workload`'s hand-rolled [`JsonValue`]).
//!
//! Everything on the hot path is a relaxed atomic increment — no locks,
//! no allocation — so metrics can stay on during a soak without
//! distorting it. Latencies land in 64 power-of-two buckets (bucket `i`
//! covers `[2^i, 2^{i+1})` nanoseconds), which bounds the quantile
//! error at 2× while keeping `record` branch-free.

use crate::combine::CombineSnapshot;
use ff_workload::{JsonValue, Table};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ latency buckets (covers 1 ns … ~584 years).
pub const BUCKETS: usize = 64;

/// A fixed-bucket log₂ latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one sample (nanoseconds).
    pub fn record(&self, nanos: u64) {
        // 0 ns lands in bucket 0; otherwise bucket = floor(log2(n)).
        let bucket = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) as the upper bound of the bucket
    /// containing it, in nanoseconds; 0 if no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// Latency + throughput counters for one operation class.
#[derive(Debug, Default)]
pub struct OpMetrics {
    ops: AtomicU64,
    latency: Histogram,
}

impl OpMetrics {
    /// Record one completed operation that took `nanos`.
    pub fn record(&self, nanos: u64) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.latency.record(nanos);
    }

    /// Record one completed *batched* call covering `n` operations:
    /// throughput counts all `n`, the latency histogram gets one sample
    /// for the whole call (per-op latency is not observable inside a
    /// batch).
    pub fn record_many(&self, nanos: u64, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
        self.latency.record(nanos);
    }

    /// Operations recorded so far.
    pub fn count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// The latency histogram.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }
}

/// All live counters of one store: reads, writes, deletes.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// `get` operations.
    pub reads: OpMetrics,
    /// `put` operations.
    pub writes: OpMetrics,
    /// `del` operations.
    pub deletes: OpMetrics,
    /// `batch` calls (ops counts operations covered; latency is per
    /// whole batch call).
    pub batches: OpMetrics,
}

/// Point-in-time percentile summary of one operation class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpSummary {
    /// Operations completed.
    pub ops: u64,
    /// Throughput over the measured window (ops/sec).
    pub ops_per_sec: f64,
    /// Median latency upper bound (ns).
    pub p50_ns: u64,
    /// 95th-percentile latency upper bound (ns).
    pub p95_ns: u64,
    /// 99th-percentile latency upper bound (ns).
    pub p99_ns: u64,
}

/// Fault accounting for one shard, from its shared `EnsembleStats`.
#[derive(Clone, Debug)]
pub struct ShardFaults {
    /// Shard index.
    pub shard: usize,
    /// The injected fault kind's label (e.g. `"overriding"`).
    pub kind: String,
    /// CAS operations executed by the shard's cells.
    pub cas_ops: u64,
    /// Fault attempts granted by the budget.
    pub attempted: u64,
    /// Observable faults (what Definition 1 counts).
    pub observable: u64,
    /// Objects with at least one observable fault.
    pub faulty_objects: u64,
}

/// A complete metrics snapshot, ready to render or serialize.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Measured wall-clock window (seconds).
    pub elapsed_secs: f64,
    /// Read (`get`) summary.
    pub reads: OpSummary,
    /// Write (`put`) summary.
    pub writes: OpSummary,
    /// Delete (`del`) summary.
    pub deletes: OpSummary,
    /// Batch summary (ops counts operations covered by batch calls).
    pub batches: OpSummary,
    /// Per-shard fault accounting.
    pub faults: Vec<ShardFaults>,
    /// Flat-combining counters, when the store ran with combining on
    /// (see [`Store::combine_snapshot`](crate::Store::combine_snapshot)).
    pub combining: Option<CombineSnapshot>,
    /// Durability counters, when the store ran with a write-ahead log
    /// (see [`Store::durability_snapshot`](crate::Store::durability_snapshot)).
    pub durability: Option<DurabilitySnapshot>,
}

/// Write-ahead-log and recovery counters of a durable store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurabilitySnapshot {
    /// Decided slot records appended to the WAL.
    pub records_logged: u64,
    /// fsyncs issued (group commits plus checkpoint rotations).
    pub fsyncs: u64,
    /// Checkpoint rotations written.
    pub checkpoints: u64,
    /// Median records per fsync (group-commit batch size, log₂-bucket
    /// upper bound).
    pub batch_p50: u64,
    /// 95th-percentile records per fsync.
    pub batch_p95: u64,
    /// Slot records recovery replayed through consensus.
    pub records_replayed: u64,
    /// Checkpoint snapshots recovery loaded.
    pub checkpoints_loaded: u64,
    /// Shard WALs recovery found torn or corrupt (and truncated).
    pub torn_tails: u64,
}

impl DurabilitySnapshot {
    /// Serialize to a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let n = |v: u64| JsonValue::Number(v as f64);
        JsonValue::Object(vec![
            ("records_logged".into(), n(self.records_logged)),
            ("fsyncs".into(), n(self.fsyncs)),
            ("checkpoints".into(), n(self.checkpoints)),
            ("batch_p50".into(), n(self.batch_p50)),
            ("batch_p95".into(), n(self.batch_p95)),
            ("records_replayed".into(), n(self.records_replayed)),
            ("checkpoints_loaded".into(), n(self.checkpoints_loaded)),
            ("torn_tails".into(), n(self.torn_tails)),
        ])
    }
}

impl StoreMetrics {
    /// Summarize one class over an `elapsed_secs` window.
    fn summarize(m: &OpMetrics, elapsed_secs: f64) -> OpSummary {
        let ops = m.count();
        OpSummary {
            ops,
            ops_per_sec: if elapsed_secs > 0.0 {
                ops as f64 / elapsed_secs
            } else {
                0.0
            },
            p50_ns: m.latency().quantile(0.50),
            p95_ns: m.latency().quantile(0.95),
            p99_ns: m.latency().quantile(0.99),
        }
    }

    /// Snapshot every counter; `faults` comes from the store's shards.
    pub fn snapshot(&self, elapsed_secs: f64, faults: Vec<ShardFaults>) -> MetricsSnapshot {
        MetricsSnapshot {
            elapsed_secs,
            reads: Self::summarize(&self.reads, elapsed_secs),
            writes: Self::summarize(&self.writes, elapsed_secs),
            deletes: Self::summarize(&self.deletes, elapsed_secs),
            batches: Self::summarize(&self.batches, elapsed_secs),
            faults,
            combining: None,
            durability: None,
        }
    }
}

impl MetricsSnapshot {
    /// Attach combining-layer counters (pass
    /// [`Store::combine_snapshot`](crate::Store::combine_snapshot)'s
    /// result; `None` leaves the snapshot unchanged).
    pub fn with_combining(mut self, combining: Option<CombineSnapshot>) -> Self {
        self.combining = combining;
        self
    }

    /// Attach durability counters (pass
    /// [`Store::durability_snapshot`](crate::Store::durability_snapshot)'s
    /// result; `None` leaves the snapshot unchanged).
    pub fn with_durability(mut self, durability: Option<DurabilitySnapshot>) -> Self {
        self.durability = durability;
        self
    }

    /// Total operations across all classes.
    pub fn total_ops(&self) -> u64 {
        self.reads.ops + self.writes.ops + self.deletes.ops + self.batches.ops
    }

    /// Total throughput (ops/sec).
    pub fn total_ops_per_sec(&self) -> f64 {
        self.reads.ops_per_sec
            + self.writes.ops_per_sec
            + self.deletes.ops_per_sec
            + self.batches.ops_per_sec
    }

    /// Observable faults summed per kind label.
    pub fn faults_by_kind(&self) -> Vec<(String, u64)> {
        let mut by_kind: Vec<(String, u64)> = Vec::new();
        for f in &self.faults {
            match by_kind.iter_mut().find(|(k, _)| *k == f.kind) {
                Some((_, n)) => *n += f.observable,
                None => by_kind.push((f.kind.clone(), f.observable)),
            }
        }
        by_kind
    }

    /// The latency/throughput table plus the per-shard fault table.
    pub fn render_tables(&self) -> String {
        let mut latency = Table::new(
            format!(
                "store ops over {:.2}s ({:.0} ops/sec total)",
                self.elapsed_secs,
                self.total_ops_per_sec()
            ),
            &["op", "count", "ops/sec", "p50", "p95", "p99"],
        );
        for (name, s) in [
            ("get", &self.reads),
            ("put", &self.writes),
            ("del", &self.deletes),
            ("batch", &self.batches),
        ] {
            if name == "batch" && s.ops == 0 {
                continue; // only shown when batched calls actually ran
            }
            latency.push_row(&[
                name.to_string(),
                s.ops.to_string(),
                format!("{:.0}", s.ops_per_sec),
                format_ns(s.p50_ns),
                format_ns(s.p95_ns),
                format_ns(s.p99_ns),
            ]);
        }
        let mut faults = Table::new(
            "per-shard fault injection (observable = Definition 1 faults)",
            &[
                "shard",
                "kind",
                "cas ops",
                "attempted",
                "observable",
                "faulty objs",
            ],
        );
        for f in &self.faults {
            faults.push_row(&[
                f.shard.to_string(),
                f.kind.clone(),
                f.cas_ops.to_string(),
                f.attempted.to_string(),
                f.observable.to_string(),
                f.faulty_objects.to_string(),
            ]);
        }
        let mut out = format!("{}\n{}", latency.render(), faults.render());
        if let Some(c) = &self.combining {
            out.push_str(&format!(
                "\ncombining: {} passes, {} ops (mean batch {:.1}, p95 {}, max {}) | \
                 read fast path: {}/{} hits ({:.1}%)\n",
                c.passes,
                c.combined_ops,
                c.mean_batch,
                c.p95_batch,
                c.max_batch,
                c.fastpath_hits,
                c.fastpath_hits + c.fastpath_misses,
                c.hit_rate() * 100.0,
            ));
        }
        if let Some(d) = &self.durability {
            out.push_str(&format!(
                "\ndurability: {} records logged, {} fsyncs (batch p50 {}, p95 {}), \
                 {} checkpoint rotations | recovery: {} replayed, {} checkpoints, {} torn tails\n",
                d.records_logged,
                d.fsyncs,
                d.batch_p50,
                d.batch_p95,
                d.checkpoints,
                d.records_replayed,
                d.checkpoints_loaded,
                d.torn_tails,
            ));
        }
        out
    }

    /// Serialize to a JSON object (the `combining` key appears only
    /// when the store ran with combining on).
    pub fn to_json(&self) -> JsonValue {
        let op = |s: &OpSummary| {
            JsonValue::Object(vec![
                ("ops".into(), JsonValue::Number(s.ops as f64)),
                ("ops_per_sec".into(), JsonValue::Number(s.ops_per_sec)),
                ("p50_ns".into(), JsonValue::Number(s.p50_ns as f64)),
                ("p95_ns".into(), JsonValue::Number(s.p95_ns as f64)),
                ("p99_ns".into(), JsonValue::Number(s.p99_ns as f64)),
            ])
        };
        let mut fields = vec![
            ("elapsed_secs".into(), JsonValue::Number(self.elapsed_secs)),
            (
                "total_ops".into(),
                JsonValue::Number(self.total_ops() as f64),
            ),
            (
                "total_ops_per_sec".into(),
                JsonValue::Number(self.total_ops_per_sec()),
            ),
            ("reads".into(), op(&self.reads)),
            ("writes".into(), op(&self.writes)),
            ("deletes".into(), op(&self.deletes)),
            ("batches".into(), op(&self.batches)),
            (
                "faults_by_kind".into(),
                JsonValue::Object(
                    self.faults_by_kind()
                        .into_iter()
                        .map(|(k, n)| (k, JsonValue::Number(n as f64)))
                        .collect(),
                ),
            ),
            (
                "shards".into(),
                JsonValue::Array(
                    self.faults
                        .iter()
                        .map(|f| {
                            JsonValue::Object(vec![
                                ("shard".into(), JsonValue::Number(f.shard as f64)),
                                ("kind".into(), JsonValue::String(f.kind.clone())),
                                ("cas_ops".into(), JsonValue::Number(f.cas_ops as f64)),
                                ("attempted".into(), JsonValue::Number(f.attempted as f64)),
                                ("observable".into(), JsonValue::Number(f.observable as f64)),
                                (
                                    "faulty_objects".into(),
                                    JsonValue::Number(f.faulty_objects as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(c) = &self.combining {
            fields.push(("combining".into(), c.to_json()));
        }
        if let Some(d) = &self.durability {
            fields.push(("durability".into(), d.to_json()));
        }
        JsonValue::Object(fields)
    }
}

/// Human-readable nanoseconds (`950ns`, `12.3µs`, `4.5ms`, `1.2s`).
pub fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1);
        h.record(1023); // bucket 9 (512..1024)
        h.record(1024); // bucket 10
        assert_eq!(h.count(), 4);
        // All mass ≤ 1024 ⇒ the max quantile is that bucket's bound.
        assert_eq!(h.quantile(1.0), 2048);
        assert_eq!(h.quantile(0.25), 2);
    }

    #[test]
    fn quantiles_on_empty_histogram_are_zero() {
        assert_eq!(Histogram::default().quantile(0.99), 0);
    }

    #[test]
    fn quantile_ordering_holds() {
        let h = Histogram::default();
        for i in 0..1000u64 {
            h.record(i * 1000);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn snapshot_renders_and_serializes() {
        let m = StoreMetrics::default();
        for i in 0..100 {
            m.reads.record(500 + i);
            m.writes.record(2000 + i);
        }
        let snap = m.snapshot(
            2.0,
            vec![ShardFaults {
                shard: 0,
                kind: "overriding".into(),
                cas_ops: 123,
                attempted: 10,
                observable: 7,
                faulty_objects: 1,
            }],
        );
        assert_eq!(snap.total_ops(), 200);
        assert!((snap.total_ops_per_sec() - 100.0).abs() < 1e-9);
        assert_eq!(snap.faults_by_kind(), vec![("overriding".to_string(), 7)]);
        let table = snap.render_tables();
        assert!(table.contains("get"), "{table}");
        assert!(table.contains("overriding"), "{table}");
        // JSON round-trips through the workload parser.
        let json = snap.to_json().render();
        let back = JsonValue::parse(&json).unwrap();
        assert_eq!(
            back.get("total_ops").and_then(JsonValue::as_f64),
            Some(200.0)
        );
        assert_eq!(
            back.get("faults_by_kind")
                .and_then(|f| f.get("overriding"))
                .and_then(JsonValue::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(950), "950ns");
        assert_eq!(format_ns(12_300), "12.3µs");
        assert_eq!(format_ns(4_500_000), "4.5ms");
        assert_eq!(format_ns(1_200_000_000), "1.20s");
    }
}
