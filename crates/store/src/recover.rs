//! Crash recovery: rebuild a store's shards from their write-ahead
//! logs.
//!
//! [`Store::recover`](crate::Store::recover) runs this per shard:
//!
//! 1. read the shard's WAL file and [`scan`](crate::wal::scan) it —
//!    the decoder is total, so a torn tail or corrupt record just ends
//!    the valid prefix;
//! 2. load the newest valid checkpoint snapshot (if any) straight into
//!    the log via the existing consensus-decided checkpoint machinery;
//! 3. replay the slot records after it **op-by-op through real
//!    consensus cells**
//!    ([`Handle::ingest_recovered`](ff_universal::Handle::ingest_recovered)):
//!    every record is re-announced under its original opid and
//!    re-decided, so digests, checkpoints and truncation behave exactly
//!    as in live operation — and a cell that mutates a re-ingested
//!    decision (the naive backend under faults) is caught by the
//!    per-record digest cross-check and surfaced as
//!    [`RecoverError::ReplayDivergence`], never served as data;
//! 4. rewrite the WAL as the compacted image (checkpoint + replayed
//!    tail), dropping the torn tail on disk too.
//!
//! Replay stops — without panicking, without guessing — at the first
//! slot-sequence break: everything after a gap is unusable because the
//! log's slots are decided in order.

use crate::map::KvMap;
use crate::wal::{
    encode_checkpoint, encode_slot, scan, shard_file, WalIoError, WalMedia, WalStats,
};
use ff_universal::{Handle, UniversalLog};
use std::sync::Arc;

/// Why recovery refused to produce a store.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoverError {
    /// The configuration has durability disabled — there is nothing to
    /// recover from.
    DurabilityDisabled,
    /// The configuration itself is invalid.
    Config(crate::ConfigError),
    /// An I/O failure on the WAL path (open/read/rename/fsync).
    Io(WalIoError),
    /// Replay through the consensus cells decided something other than
    /// the recorded history (or the digest cross-check failed): the
    /// backend mutated a re-ingested decision. Recovery refuses to
    /// serve the resulting state.
    ReplayDivergence {
        /// The shard whose replay diverged.
        shard: usize,
        /// The slot at which the divergence was detected.
        slot: usize,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::DurabilityDisabled => {
                write!(f, "recovery needs a durability data dir in the config")
            }
            RecoverError::Config(e) => write!(f, "invalid StoreConfig: {e}"),
            RecoverError::Io(e) => write!(f, "durability I/O failure: {e}"),
            RecoverError::ReplayDivergence { shard, slot } => write!(
                f,
                "shard {shard} replay diverged from the recorded history at slot {slot}"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<WalIoError> for RecoverError {
    fn from(e: WalIoError) -> Self {
        RecoverError::Io(e)
    }
}

/// What recovery found and did for one shard.
#[derive(Clone, Debug)]
pub struct ShardRecovery {
    /// The shard index.
    pub shard: usize,
    /// The checkpoint snapshot slot loaded, if the WAL held one.
    pub checkpoint_slot: Option<usize>,
    /// Slot records replayed through consensus after the checkpoint.
    pub records_replayed: usize,
    /// Decodable records discarded after a slot-sequence break.
    pub records_skipped: usize,
    /// Bytes past the valid prefix (the torn/corrupt tail, truncated).
    pub torn_bytes: usize,
    /// Why the WAL's valid prefix ended early (`None` = clean tail).
    pub corrupt: Option<String>,
    /// The log's next slot after recovery.
    pub end_slot: usize,
}

/// The whole store's recovery outcome.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// One entry per shard.
    pub shards: Vec<ShardRecovery>,
}

impl RecoveryReport {
    /// Total slot records replayed across shards.
    pub fn records_replayed(&self) -> u64 {
        self.shards.iter().map(|s| s.records_replayed as u64).sum()
    }

    /// Checkpoint snapshots loaded across shards.
    pub fn checkpoints_loaded(&self) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.checkpoint_slot.is_some())
            .count() as u64
    }

    /// Shards whose WAL ended in a torn or corrupt tail.
    pub fn torn_tails(&self) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.corrupt.is_some() || s.torn_bytes > 0)
            .count() as u64
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "recovered {} shard(s): {} checkpoint(s) loaded, {} record(s) replayed, {} torn tail(s) truncated",
            self.shards.len(),
            self.checkpoints_loaded(),
            self.records_replayed(),
            self.torn_tails(),
        )
    }
}

/// Recover one shard's log from its WAL. Returns the shard outcome plus
/// the re-encoded (checkpoint, tail) frames the writer seeds its
/// rotation cache — and the compacted on-disk image — from.
///
/// Must run before the shard has any other handles (the replay cells
/// are decided single-proposer).
pub(crate) fn recover_shard(
    log: &Arc<UniversalLog>,
    shard: usize,
    media: &Arc<dyn WalMedia>,
    stats: &WalStats,
    interval: usize,
) -> Result<RecoveredShard, RecoverError> {
    let bytes = media.read(&shard_file(shard))?.unwrap_or_default();
    let scanned = scan(&bytes);
    let mut corrupt = scanned.corrupt.clone();

    // The newest checkpoint whose slot is a real boundary. A
    // checksum-valid record claiming an off-boundary slot is corruption
    // the frame CRC cannot see; it is simply never chosen.
    let chosen = scanned
        .entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            crate::wal::WalEntry::Checkpoint {
                slot,
                digest,
                words,
            } if *slot > 0 && slot.is_multiple_of(interval) => Some((i, *slot, *digest, words)),
            _ => None,
        })
        .next_back();

    let mut ckpt_frame = None;
    let mut expected = 0usize;
    let mut tail_start = 0usize;
    if let Some((idx, slot, digest, words)) = chosen {
        log.install_recovered_snapshot(slot, digest, words.clone());
        ckpt_frame = Some((slot, encode_checkpoint(slot, digest, words)));
        expected = slot;
        tail_start = idx + 1;
        stats
            .loaded_checkpoints
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    // The replay handle bootstraps from the just-installed snapshot
    // (state, digest, start slot) and is dropped afterwards — its
    // truncation watermark unregisters on drop. It never invokes, so
    // its pid is free for later clients.
    let mut replayer = Handle::new(Arc::clone(log), REPLAY_PID, KvMap::default());
    let mut tail_frames: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    for (i, entry) in scanned.entries.iter().enumerate().skip(tail_start) {
        match entry {
            crate::wal::WalEntry::Slot {
                slot,
                opid,
                digest_after,
                record,
            } if *slot == expected => {
                let agreed = replayer.ingest_recovered(*opid, record.clone());
                if !agreed || replayer.digest() != *digest_after || log.divergence_detected() {
                    return Err(RecoverError::ReplayDivergence { shard, slot: *slot });
                }
                tail_frames.push((*slot, encode_slot(*slot, *opid, *digest_after, record)));
                expected += 1;
                replayed += 1;
            }
            _ => {
                // A slot out of sequence (or a stray checkpoint record)
                // after the loaded snapshot: the decided order cannot
                // have a gap, so everything from here on is unusable.
                skipped = scanned.entries.len() - i;
                corrupt.get_or_insert_with(|| "slot sequence break".to_string());
                break;
            }
        }
    }
    stats
        .replayed
        .fetch_add(replayed as u64, std::sync::atomic::Ordering::Relaxed);
    if corrupt.is_some() || scanned.torn_bytes > 0 {
        stats
            .torn_tails
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    Ok(RecoveredShard {
        outcome: ShardRecovery {
            shard,
            checkpoint_slot: chosen.map(|(_, slot, _, _)| slot),
            records_replayed: replayed,
            records_skipped: skipped,
            torn_bytes: scanned.torn_bytes,
            corrupt,
            end_slot: expected,
        },
        ckpt_frame,
        tail_frames,
    })
}

/// The pid the temporary replay handle runs under. It never invokes an
/// operation, so it cannot collide with the opids of real clients; 1023
/// is the same reserved pid the verify observer uses, and both exist
/// only while no clients run.
const REPLAY_PID: u16 = 1023;

/// [`recover_shard`]'s full result: the report entry plus the frames
/// that seed the shard's fresh WAL writer.
pub(crate) struct RecoveredShard {
    pub outcome: ShardRecovery,
    pub ckpt_frame: Option<(usize, Vec<u8>)>,
    pub tail_frames: Vec<(usize, Vec<u8>)>,
}
