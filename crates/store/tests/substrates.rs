//! The substrate conformance suite: every registered substrate — the
//! built-in seven and anything a downstream crate registers before the
//! suite runs — is held to the same contract.
//!
//! * **Agreement & validity** — concurrent `decide` calls on one cell
//!   return one decision, and it is some process's input (Definition 3),
//!   both fault-free and under every fault kind the substrate declares
//!   tolerated.
//! * **Accounting** — a constructed cell uses exactly the number of
//!   shared objects the substrate declares via `objects_per_cell`.
//! * **Envelope** — `validate` refuses every fault kind the substrate
//!   does *not* declare tolerated (for substrates that inject at all),
//!   and unknown substrate names fail parsing with the full valid list.
//! * **Whole-store survival** — a store on any consistency-promising
//!   substrate ends `Store::verify`-consistent at the sweep fault rate.

use ff_spec::{Bound, FaultKind, Input};
use ff_store::{all_backends, run_soak, Backend, FaultConfig, ShardCells, SoakConfig};
use ff_universal::CellFactory;
use proptest::prelude::*;

/// All kinds the injection layer can produce (invisible faults are a
/// lower-bound construct and never injected — see the spec crate).
const INJECTABLE: &[FaultKind] = &[
    FaultKind::Overriding,
    FaultKind::Silent,
    FaultKind::Arbitrary,
];

/// A fault environment the substrate accepts: `kind` injected at
/// `rate` with `f = 1`, the silent budget finite as `validate`
/// demands.
fn fault_env(kind: FaultKind, rate: f64) -> FaultConfig {
    FaultConfig {
        kind,
        f: 1,
        t: if kind == FaultKind::Silent {
            Bound::Finite(8)
        } else {
            Bound::Unbounded
        },
        rate,
        ..FaultConfig::default()
    }
}

/// Every fault environment this backend's `validate` accepts, at
/// `rate`: the fault-free default for non-injecting substrates (and
/// the broken witness), one environment per tolerated kind otherwise.
fn accepted_envs(backend: &Backend, rate: f64) -> Vec<FaultConfig> {
    if backend.tolerated_kinds().is_empty() {
        vec![FaultConfig {
            rate,
            ..FaultConfig::default()
        }]
    } else {
        backend
            .tolerated_kinds()
            .iter()
            .map(|&kind| fault_env(kind, rate))
            .collect()
    }
}

/// Drive `threads` concurrent `decide` calls with distinct inputs on
/// one fresh cell; assert agreement, validity, and decide-once
/// stickiness.
fn assert_cell_agreement(cells: &ShardCells, threads: u32, label: &str) {
    let cell = cells.make();
    let decisions: Vec<Input> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let cell = &cell;
                s.spawn(move || cell.decide(Input(100 + i)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let first = decisions[0];
    assert!(
        decisions.iter().all(|&d| d == first),
        "{label}: processes disagreed: {decisions:?}"
    );
    assert!(
        (100..100 + threads).contains(&first.0),
        "{label}: decided {first:?}, not any process's input"
    );
    assert_eq!(
        cell.decide(Input(999)),
        first,
        "{label}: a later decide overturned the decision"
    );
}

#[test]
fn every_name_round_trips_and_unknown_names_list_the_registry() {
    for backend in all_backends() {
        let parsed: Backend = backend.name().parse().unwrap();
        assert_eq!(parsed, backend);
        assert_eq!(parsed.to_string(), backend.name());
    }
    let err = "no-such-substrate".parse::<Backend>().unwrap_err();
    let message = err.to_string();
    for name in ff_store::substrate_names() {
        assert!(
            message.contains(name),
            "unknown-substrate error must list {name:?}: {message}"
        );
    }
}

#[test]
fn agreement_and_validity_fault_free() {
    for backend in all_backends() {
        for fault in accepted_envs(&backend, 0.0) {
            let cells = ShardCells::new(backend.clone(), fault, 0xA11CE);
            assert_cell_agreement(&cells, 4, backend.name());
        }
    }
}

#[test]
fn agreement_and_validity_under_every_tolerated_kind() {
    for backend in all_backends() {
        if !backend.injects_faults() || !backend.expected_consistent() {
            continue; // the broken witness promises nothing under faults
        }
        for &kind in backend.tolerated_kinds() {
            for seed in 0..8u64 {
                let cells = ShardCells::new(backend.clone(), fault_env(kind, 0.5), seed);
                assert_cell_agreement(&cells, 4, &format!("{backend} under {kind:?}"));
            }
        }
    }
}

#[test]
fn objects_used_matches_declared_accounting() {
    for backend in all_backends() {
        for fault in accepted_envs(&backend, 0.2) {
            let declared = backend.objects_per_cell(&fault);
            let cells = ShardCells::new(backend.clone(), fault, 7);
            let cell = cells.make();
            assert_eq!(
                cell.objects_used(),
                declared,
                "{backend}: cell used {} objects, declared {declared}",
                cell.objects_used()
            );
        }
    }
}

#[test]
fn validate_refuses_exactly_the_untolerated_kinds() {
    for backend in all_backends() {
        if backend.tolerated_kinds().is_empty() {
            // Non-injecting substrates (and the broken witness) accept
            // any environment: they never construct from it.
            for &kind in INJECTABLE {
                assert!(backend.validate(&fault_env(kind, 0.2)).is_ok(), "{backend}");
            }
            continue;
        }
        for &kind in INJECTABLE {
            let verdict = backend.validate(&fault_env(kind, 0.2));
            if backend.tolerated_kinds().contains(&kind) {
                assert!(verdict.is_ok(), "{backend} must accept tolerated {kind:?}");
            } else {
                assert!(
                    verdict.is_err(),
                    "{backend} must refuse untolerated {kind:?}"
                );
            }
        }
        // The shared envelope rules: no fault-free "robust" stores, no
        // unbounded silent budgets.
        assert!(backend
            .validate(&FaultConfig {
                f: 0,
                ..fault_env(backend.tolerated_kinds()[0], 0.2)
            })
            .is_err());
        if backend.tolerated_kinds().contains(&FaultKind::Silent) {
            assert!(backend
                .validate(&FaultConfig {
                    t: Bound::Unbounded,
                    ..fault_env(FaultKind::Silent, 0.2)
                })
                .is_err());
        }
    }
}

/// The acceptance bar: a whole store on every consistency-promising
/// substrate — including the robust-composed ones over weaker
/// primitives — ends `Store::verify`-consistent at fault rate 0.2.
#[test]
fn stores_verify_consistent_at_the_sweep_fault_rate() {
    for backend in all_backends() {
        if !backend.expected_consistent() {
            continue;
        }
        let report = run_soak(&SoakConfig {
            threads: 2,
            shards: 2,
            secs: 0.3,
            fault_rate: 0.2,
            backend: backend.clone(),
            ..SoakConfig::default()
        });
        assert!(
            report.consistent,
            "store on {backend} diverged at fault rate 0.2"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Interleaving sweep: random worker counts and fault seeds across
    // every substrate and every tolerated kind — agreement, validity
    // and stickiness must hold on each fresh cell.
    #[test]
    fn prop_agreement_across_interleavings(
        threads in 1u32..5,
        seed in any::<u64>(),
        rate_pct in 0u32..80,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        for backend in all_backends() {
            if !backend.expected_consistent() {
                continue;
            }
            let envs = if backend.injects_faults() {
                accepted_envs(&backend, rate)
            } else {
                accepted_envs(&backend, 0.0)
            };
            for fault in envs {
                let cells = ShardCells::new(backend.clone(), fault, seed);
                assert_cell_agreement(&cells, threads, backend.name());
            }
        }
    }
}
