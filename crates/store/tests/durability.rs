//! End-to-end durability and crash-recovery tests for the store's
//! write-ahead log: kill/recover round trips, the
//! crash-at-every-fsync-boundary sweep, and torn-write robustness
//! (recovery must never panic on arbitrary truncations or byte flips —
//! it replays a valid prefix or returns a typed `RecoverError`).

use ff_store::{
    Backend, ConfigError, FaultConfig, Kv, ProcessFault, RecoverError, Store, StoreConfig,
    WalIoError, WalMedia,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique temp dir per test (removed at the end of each test body).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ff-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path, backend: Backend) -> StoreConfig {
    StoreConfig::builder()
        .shards(2)
        .backend(backend.clone())
        .fault_rate(if backend == Backend::robust() {
            0.2
        } else {
            0.0
        })
        .checkpoint_interval(8)
        .data_dir(dir)
        .group_commit(4)
        .rotate_cost(0)
        .build()
        .unwrap()
}

#[test]
fn write_kill_recover_round_trip_under_faults() {
    let dir = temp_dir("round-trip");
    let config = durable_config(&dir, Backend::robust());

    let store = Store::new(config.clone());
    let mut c = store.client();
    for k in 0..200u32 {
        c.put(k % 64, k + 1000).unwrap();
    }
    assert!(store.durability_error().is_none());
    store.flush_wal();
    // Model of the final state: last write wins per key.
    let mut model = std::collections::HashMap::new();
    for k in 0..200u32 {
        model.insert(k % 64, k + 1000);
    }
    drop(c);
    drop(store); // the crash: all volatile state gone, the dir survives

    let (recovered, report) = Store::recover(config).expect("recovery");
    assert!(
        report.checkpoints_loaded() > 0,
        "200 ops over interval 8 must have rotated at least one checkpoint: {}",
        report.render()
    );
    let mut c = recovered.client();
    for (k, v) in &model {
        assert_eq!(c.get(*k).unwrap(), Some(*v), "key {k} after recovery");
    }
    // The recovered store keeps working — and verifies — like a fresh
    // one.
    for k in 0..32u32 {
        c.put(k, k + 5000).unwrap();
    }
    assert_eq!(c.get(3).unwrap(), Some(5003));
    assert!(recovered.verify(&mut [c]).all_consistent());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn combining_durable_store_recovers() {
    let dir = temp_dir("combining");
    let mut config = durable_config(&dir, Backend::robust());
    config.combining = true;

    let store = Store::new(config.clone());
    let mut c = store.client();
    for k in 0..100u32 {
        c.put(k % 32, k).unwrap();
    }
    store.flush_wal();
    drop(c);
    drop(store);

    let (recovered, report) = Store::recover(config).expect("recovery");
    assert!(report.records_replayed() + report.checkpoints_loaded() > 0);
    let mut c = recovered.client();
    for k in 0..32u32 {
        let want = (0..100u32).rfind(|i| i % 32 == k);
        assert_eq!(c.get(k).unwrap(), want);
    }
    assert!(recovered.verify(&mut [c]).all_consistent());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-at-every-fsync-boundary sweep: snapshot the WAL after
/// every single durable op, then recover each snapshot and demand
/// **exactly** the corresponding prefix of the history — nothing lost
/// below the fsync line, nothing invented above it.
#[test]
fn crash_at_every_fsync_boundary_recovers_exact_prefix() {
    let dir = temp_dir("fsync-sweep");
    let config = StoreConfig::builder()
        .shards(1)
        .backend(Backend::reliable())
        .checkpoint_interval(4)
        .data_dir(&dir)
        .group_commit(1) // fsync boundary after every op
        .rotate_cost(0)
        .build()
        .unwrap();

    const OPS: u32 = 30;
    let wal_path = dir.join("shard-0.wal");
    let mut images: Vec<Vec<u8>> = Vec::new();
    {
        let store = Store::new(config.clone());
        let mut c = store.client();
        for k in 0..OPS {
            c.put(k, k + 100).unwrap();
            store.flush_wal();
            images.push(std::fs::read(&wal_path).unwrap());
        }
    }

    for (i, image) in images.iter().enumerate() {
        std::fs::write(&wal_path, image).unwrap();
        let (store, report) = Store::recover(config.clone())
            .unwrap_or_else(|e| panic!("recovery failed at boundary {i}: {e}"));
        assert!(
            report.torn_tails() == 0,
            "clean fsync boundary {i} reported a torn tail"
        );
        let mut c = store.client();
        for k in 0..OPS {
            let want = (k as usize <= i).then_some(k + 100);
            assert_eq!(c.get(k).unwrap(), want, "key {k} at boundary {i}");
        }
        assert!(store.verify(&mut [c]).all_consistent());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-write robustness: truncating the WAL at **every byte offset**
/// must never panic recovery — it recovers a valid prefix and verifies.
#[test]
fn truncation_at_every_byte_never_panics_recovery() {
    let dir = temp_dir("truncate-sweep");
    let config = StoreConfig::builder()
        .shards(1)
        .backend(Backend::reliable())
        .checkpoint_interval(4)
        .data_dir(&dir)
        .group_commit(1)
        .rotate_cost(0)
        .build()
        .unwrap();

    let wal_path = dir.join("shard-0.wal");
    {
        let store = Store::new(config.clone());
        let mut c = store.client();
        for k in 0..24u32 {
            c.put(k, k + 100).unwrap();
        }
        store.flush_wal();
    }
    let full = std::fs::read(&wal_path).unwrap();

    for cut in 0..=full.len() {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let (store, report) = Store::recover(config.clone())
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        if cut < full.len() {
            // A mid-record cut is a torn tail; a record-boundary cut is
            // clean — either way the prefix must verify.
            let clean = report.shards[0].torn_bytes == 0 && report.shards[0].corrupt.is_none();
            assert!(clean || report.torn_tails() == 1);
        }
        let mut c = store.client();
        let _ = c.get(0).unwrap();
        assert!(store.verify(&mut [c]).all_consistent(), "cut {cut}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flipping any byte of the WAL must never panic recovery either: the
/// checksum ends the valid prefix at the mutated record.
#[test]
fn byte_flips_never_panic_recovery() {
    let dir = temp_dir("flip-sweep");
    let config = StoreConfig::builder()
        .shards(1)
        .backend(Backend::reliable())
        .checkpoint_interval(64) // no rotation: one long record run
        .data_dir(&dir)
        .group_commit(1)
        .build()
        .unwrap();

    let wal_path = dir.join("shard-0.wal");
    {
        let store = Store::new(config.clone());
        let mut c = store.client();
        for k in 0..20u32 {
            c.put(k, k + 100).unwrap();
        }
        store.flush_wal();
    }
    let full = std::fs::read(&wal_path).unwrap();

    for at in (0..full.len()).step_by(3) {
        let mut mutated = full.clone();
        mutated[at] ^= 0x41;
        std::fs::write(&wal_path, &mutated).unwrap();
        match Store::recover(config.clone()) {
            Ok((store, _)) => {
                let mut c = store.client();
                // Whatever prefix survived, reads answer and the store
                // verifies — wrong data is never served silently.
                for k in 0..20u32 {
                    let got = c.get(k).unwrap();
                    assert!(got.is_none() || got == Some(k + 100), "key {k} flip {at}");
                }
                assert!(store.verify(&mut [c]).all_consistent(), "flip {at}");
            }
            Err(e) => {
                // A typed refusal is also acceptable — but only the
                // divergence kind (a flip cannot cause I/O errors).
                assert!(
                    matches!(e, RecoverError::ReplayDivergence { .. }),
                    "unexpected error at flip {at}: {e}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replaying recorded history through the naive backend under full
/// fault injection mutates re-ingested decisions; recovery must refuse
/// with a typed divergence error, never serve the corrupted state.
#[test]
fn naive_backend_replay_divergence_is_refused() {
    let dir = temp_dir("naive-replay");
    let write_config = StoreConfig::builder()
        .shards(1)
        .backend(Backend::naive())
        // Arbitrary faults return garbage words, which the naive cell
        // adopts as decisions. Rate 0 while writing a clean history...
        .fault(FaultConfig {
            kind: ff_spec::FaultKind::Arbitrary,
            rate: 0.0,
            ..FaultConfig::default()
        })
        .checkpoint_interval(1024) // ...kept entirely in the tail
        .data_dir(&dir)
        .build()
        .unwrap();
    {
        let store = Store::new(write_config.clone());
        let mut c = store.client();
        for k in 0..40u32 {
            c.put(k, k).unwrap();
        }
        store.flush_wal();
    }
    let mut recover_config = write_config;
    recover_config.fault.rate = 1.0; // ...replayed through lying cells
    match Store::recover(recover_config) {
        Err(RecoverError::ReplayDivergence { shard: 0, .. }) => {}
        Err(other) => panic!("expected replay divergence, got {other}"),
        Ok(_) => panic!("naive replay under full faults must not recover cleanly"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recover_taxonomy_requires_durability() {
    let err = StoreConfig::builder()
        .fault(FaultConfig {
            process: ProcessFault::CrashRecover,
            ..FaultConfig::default()
        })
        .build();
    assert_eq!(err, Err(ConfigError::CrashRecoverNeedsDurability));

    let dir = temp_dir("taxonomy");
    let ok = StoreConfig::builder()
        .fault(FaultConfig {
            process: ProcessFault::CrashRecover,
            ..FaultConfig::default()
        })
        .data_dir(&dir)
        .build();
    assert!(ok.is_ok());
    assert_eq!(
        StoreConfig::builder()
            .data_dir(&dir)
            .group_commit(0)
            .build(),
        Err(ConfigError::ZeroGroupCommit)
    );
}

/// A media that starts failing after a set number of appends — the
/// fsync/open/rename failure path: the store latches the error,
/// surfaces it through `durability_error`, and never panics.
struct FailingMedia {
    inner: ff_store::FsMedia,
    appends_left: AtomicU64,
}

impl WalMedia for FailingMedia {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, WalIoError> {
        self.inner.read(name)
    }
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalIoError> {
        if self.appends_left.fetch_sub(1, Ordering::Relaxed) == 0 {
            return Err(WalIoError {
                op: "append",
                path: name.to_string(),
                detail: "injected disk failure".to_string(),
            });
        }
        self.inner.append(name, bytes)
    }
    fn sync(&self, name: &str) -> Result<(), WalIoError> {
        self.inner.sync(name)
    }
    fn replace(&self, name: &str, contents: &[u8]) -> Result<(), WalIoError> {
        self.inner.replace(name, contents)
    }
}

#[test]
fn wal_io_failure_is_latched_and_surfaced() {
    let dir = temp_dir("io-failure");
    let config = StoreConfig::builder()
        .shards(1)
        .backend(Backend::reliable())
        .data_dir(&dir)
        .group_commit(1)
        .build()
        .unwrap();
    let media = Arc::new(FailingMedia {
        inner: ff_store::FsMedia::open(&dir).unwrap(),
        appends_left: AtomicU64::new(10),
    });
    let store = Store::new_with_media(config, media).unwrap();
    let mut c = store.client();
    for k in 0..40u32 {
        c.put(k, k).unwrap(); // in-memory operation keeps working
    }
    let err = store
        .durability_error()
        .expect("the injected failure must surface");
    assert_eq!(err.op, "append");
    assert!(err.detail.contains("injected disk failure"));
    let _ = std::fs::remove_dir_all(&dir);
}
