//! The simulated shared memory: an array of CAS cells plus an array of
//! read/write registers.
//!
//! The heap is plain data — cloneable and exactly comparable — so the
//! exhaustive explorer can snapshot and memoize execution states without
//! any loss of precision.

use crate::ops::FaultDecision;
use ff_spec::{CasRecord, ObjectId, Word, BOTTOM};

/// Identifier of a read/write register (a separate namespace from the CAS
/// objects, mirroring the paper's "f CAS objects and an unbounded number of
/// read/write registers").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegId(pub usize);

impl std::fmt::Display for RegId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The simulated shared memory.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Heap {
    cells: Vec<Word>,
    registers: Vec<Word>,
    /// Per CAS cell: has its content ever changed? (Maintained for the
    /// covering adversary of Theorem 19, whose schedule hinges on "the
    /// first CAS to an object not yet written".)
    written: Vec<bool>,
}

impl Heap {
    /// A heap with `cas_cells` CAS objects (all initialized to `⊥`) and
    /// `registers` read/write registers (initialized to 0).
    pub fn new(cas_cells: usize, registers: usize) -> Self {
        Heap {
            cells: vec![BOTTOM; cas_cells],
            registers: vec![0; registers],
            written: vec![false; cas_cells],
        }
    }

    /// Number of CAS cells.
    pub fn cas_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of read/write registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Current content of a CAS cell. This is *simulator-level* inspection
    /// (for auditing and adversaries); the paper's CAS objects expose no
    /// read operation to the processes themselves, and the protocol
    /// machines never call it.
    pub fn peek_cas(&self, obj: ObjectId) -> Word {
        self.cells[obj.0]
    }

    /// Has this CAS cell's content ever changed?
    pub fn cas_written(&self, obj: ObjectId) -> bool {
        self.written[obj.0]
    }

    /// Execute a CAS on `obj`, applying `decision`, and return the full
    /// observable record. The returned old value is correct except under an
    /// [`FaultDecision::Invisible`] decision, matching Section 3.3's note
    /// that the overriding fault leaves the output correct.
    pub fn apply_cas(
        &mut self,
        obj: ObjectId,
        exp: Word,
        new: Word,
        decision: FaultDecision,
    ) -> CasRecord {
        let pre = self.cells[obj.0];
        let (post, returned) = match decision {
            FaultDecision::Correct => {
                let post = if pre == exp { new } else { pre };
                (post, pre)
            }
            // Overriding (Section 3.3): the comparison erroneously
            // succeeds; the write happens unconditionally.
            FaultDecision::Override => (new, pre),
            // Silent (Section 3.4): the write is suppressed even on match.
            FaultDecision::Silent => (pre, pre),
            // Invisible (Section 3.4): register correct, returned value wrong.
            FaultDecision::Invisible { returned } => {
                let post = if pre == exp { new } else { pre };
                (post, returned)
            }
            // Arbitrary (Section 3.4): an adversary-chosen value is written.
            FaultDecision::Arbitrary { written } => (written, pre),
        };
        self.cells[obj.0] = post;
        if post != pre {
            self.written[obj.0] = true;
        }
        CasRecord {
            pre,
            exp,
            new,
            post,
            returned,
        }
    }

    /// Read a register.
    pub fn read_register(&self, reg: RegId) -> Word {
        self.registers[reg.0]
    }

    /// Write a register.
    pub fn write_register(&mut self, reg: RegId, val: Word) {
        self.registers[reg.0] = val;
    }

    /// Overwrite a CAS cell directly — a *data fault* in the sense of
    /// Section 3.1 (memory corruption independent of any operation). Used
    /// only by the data-fault adversary for the model-separation
    /// experiment; functional faults never call this.
    pub fn corrupt_cas(&mut self, obj: ObjectId, val: Word) {
        let pre = self.cells[obj.0];
        self.cells[obj.0] = val;
        if val != pre {
            self.written[obj.0] = true;
        }
    }

    /// An exact, order-stable encoding of the heap state, used as part of
    /// the explorer's memoization key.
    pub fn snapshot(&self) -> Vec<Word> {
        let mut v = Vec::with_capacity(self.cells.len() + self.registers.len());
        v.extend_from_slice(&self.cells);
        v.extend_from_slice(&self.registers);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_spec::{classify_cas, CasClassification, FaultKind};

    #[test]
    fn fresh_heap_is_bottom() {
        let h = Heap::new(3, 2);
        assert_eq!(h.cas_count(), 3);
        assert_eq!(h.register_count(), 2);
        for i in 0..3 {
            assert_eq!(h.peek_cas(ObjectId(i)), BOTTOM);
            assert!(!h.cas_written(ObjectId(i)));
        }
        assert_eq!(h.read_register(RegId(0)), 0);
    }

    #[test]
    fn correct_cas_success_and_failure() {
        let mut h = Heap::new(1, 0);
        let r = h.apply_cas(ObjectId(0), BOTTOM, 5, FaultDecision::Correct);
        assert_eq!(classify_cas(&r), CasClassification::Correct);
        assert!(r.successful());
        assert_eq!(h.peek_cas(ObjectId(0)), 5);
        assert!(h.cas_written(ObjectId(0)));

        let r = h.apply_cas(ObjectId(0), BOTTOM, 9, FaultDecision::Correct);
        assert_eq!(classify_cas(&r), CasClassification::Correct);
        assert!(!r.successful());
        assert_eq!(r.returned, 5);
        assert_eq!(h.peek_cas(ObjectId(0)), 5);
    }

    #[test]
    fn override_decision_produces_overriding_fault() {
        let mut h = Heap::new(1, 0);
        h.apply_cas(ObjectId(0), BOTTOM, 5, FaultDecision::Correct);
        let r = h.apply_cas(ObjectId(0), BOTTOM, 9, FaultDecision::Override);
        assert_eq!(
            classify_cas(&r),
            CasClassification::Fault(FaultKind::Overriding)
        );
        assert_eq!(r.returned, 5, "overriding fault still returns correct old");
        assert_eq!(h.peek_cas(ObjectId(0)), 9);
    }

    #[test]
    fn override_on_matching_comparison_is_correct() {
        // When the comparison would have succeeded anyway, the "fault"
        // produces a record satisfying the standard postconditions: not a
        // fault per Definition 1.
        let mut h = Heap::new(1, 0);
        let r = h.apply_cas(ObjectId(0), BOTTOM, 5, FaultDecision::Override);
        assert_eq!(classify_cas(&r), CasClassification::Correct);
    }

    #[test]
    fn silent_decision_produces_silent_fault_on_match() {
        let mut h = Heap::new(1, 0);
        let r = h.apply_cas(ObjectId(0), BOTTOM, 5, FaultDecision::Silent);
        assert_eq!(
            classify_cas(&r),
            CasClassification::Fault(FaultKind::Silent)
        );
        assert_eq!(h.peek_cas(ObjectId(0)), BOTTOM);
        assert!(!h.cas_written(ObjectId(0)));
    }

    #[test]
    fn invisible_decision() {
        let mut h = Heap::new(1, 0);
        let r = h.apply_cas(ObjectId(0), 7, 5, FaultDecision::Invisible { returned: 7 });
        // pre = ⊥ ≠ exp = 7, register untouched, but returned 7 ≠ ⊥.
        assert_eq!(
            classify_cas(&r),
            CasClassification::Fault(FaultKind::Invisible)
        );
        assert_eq!(h.peek_cas(ObjectId(0)), BOTTOM);
    }

    #[test]
    fn arbitrary_decision() {
        let mut h = Heap::new(1, 0);
        let r = h.apply_cas(
            ObjectId(0),
            BOTTOM,
            5,
            FaultDecision::Arbitrary { written: 1234 },
        );
        assert_eq!(
            classify_cas(&r),
            CasClassification::Fault(FaultKind::Arbitrary)
        );
        assert_eq!(h.peek_cas(ObjectId(0)), 1234);
    }

    #[test]
    fn registers_read_write() {
        let mut h = Heap::new(0, 2);
        h.write_register(RegId(1), 77);
        assert_eq!(h.read_register(RegId(1)), 77);
        assert_eq!(h.read_register(RegId(0)), 0);
    }

    #[test]
    fn corrupt_cas_is_a_data_fault() {
        let mut h = Heap::new(1, 0);
        h.corrupt_cas(ObjectId(0), 42);
        assert_eq!(h.peek_cas(ObjectId(0)), 42);
        assert!(h.cas_written(ObjectId(0)));
    }

    #[test]
    fn snapshot_is_exact() {
        let mut a = Heap::new(2, 1);
        let b = a.clone();
        assert_eq!(a.snapshot(), b.snapshot());
        a.write_register(RegId(0), 1);
        assert_ne!(a.snapshot(), b.snapshot());
    }
}
