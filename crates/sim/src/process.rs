//! Simulated processes as explicit step machines.
//!
//! A [`Process`] is a deterministic local state machine that exposes the
//! paper's step discipline: the executor asks for the next shared-memory
//! operation ([`Process::next_op`]), performs it (possibly faultily), and
//! feeds back the result ([`Process::apply`]). Splitting request from
//! application lets the exhaustive explorer branch on scheduling *and* on
//! fault decisions without ever rolling back a process.
//!
//! Implementations must be fully deterministic functions of their local
//! state and the results they receive, and must expose that local state
//! exactly through [`Process::snapshot`] so the explorer can memoize
//! execution states without hash-collision risk.

use crate::ops::{Op, OpResult};
use ff_spec::Input;

/// The externally visible status of a process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Status {
    /// Still executing the protocol.
    Running,
    /// Terminated with a decision.
    Decided(Input),
}

impl Status {
    /// The decision, if terminated.
    pub fn decision(self) -> Option<Input> {
        match self {
            Status::Running => None,
            Status::Decided(v) => Some(v),
        }
    }

    /// A collision-free word encoding for [`Process::snapshot`]
    /// implementations: 0 for running, `1 + input` for decided.
    pub fn word(self) -> u64 {
        match self {
            Status::Running => 0,
            Status::Decided(v) => 1 + v.0 as u64,
        }
    }
}

/// A deterministic step-machine process.
pub trait Process: Send {
    /// The shared-memory operation this process performs in its next step.
    /// Only called while [`Process::status`] is [`Status::Running`]; must
    /// be a pure function of the local state (calling it twice without an
    /// intervening [`Process::apply`] returns the same op).
    fn next_op(&self) -> Op;

    /// Consume the result of the step most recently requested via
    /// [`Process::next_op`] and advance the local state. Returns the new
    /// status.
    fn apply(&mut self, result: OpResult) -> Status;

    /// Current status.
    fn status(&self) -> Status;

    /// This process's input value (for consensus-style tasks).
    fn input(&self) -> Input;

    /// An exact encoding of the local state as words. Two processes of the
    /// same concrete type with equal snapshots must behave identically on
    /// all future schedules. Used (with the heap snapshot) as the
    /// explorer's memoization key — exact, so memoization can never mask a
    /// reachable violation.
    fn snapshot(&self) -> Vec<u64>;

    /// Clone into a boxed trait object (processes are snapshotted wholesale
    /// during DFS branching).
    fn box_clone(&self) -> Box<dyn Process>;
}

impl Clone for Box<dyn Process> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A trivial process that performs `local_steps` local steps and then
/// decides its own input. Useful for executor and scheduler tests.
#[derive(Clone, Debug)]
pub struct SoloDecider {
    input: Input,
    remaining: u64,
    status: Status,
}

impl SoloDecider {
    /// A process that decides its input after `local_steps` local steps.
    pub fn new(input: Input, local_steps: u64) -> Self {
        SoloDecider {
            input,
            remaining: local_steps,
            status: Status::Running,
        }
    }
}

impl Process for SoloDecider {
    fn next_op(&self) -> Op {
        Op::Local
    }

    fn apply(&mut self, _result: OpResult) -> Status {
        if self.remaining == 0 {
            self.status = Status::Decided(self.input);
        } else {
            self.remaining -= 1;
            if self.remaining == 0 {
                self.status = Status::Decided(self.input);
            }
        }
        self.status
    }

    fn status(&self) -> Status {
        self.status
    }

    fn input(&self) -> Input {
        self.input
    }

    fn snapshot(&self) -> Vec<u64> {
        let status_word = self.status.word();
        vec![self.input.0 as u64, self.remaining, status_word]
    }

    fn box_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_decision() {
        assert_eq!(Status::Running.decision(), None);
        assert_eq!(Status::Decided(Input(3)).decision(), Some(Input(3)));
    }

    #[test]
    fn solo_decider_counts_down() {
        let mut p = SoloDecider::new(Input(9), 2);
        assert_eq!(p.status(), Status::Running);
        assert_eq!(p.next_op(), Op::Local);
        assert_eq!(p.apply(OpResult::Local), Status::Running);
        assert_eq!(p.apply(OpResult::Local), Status::Decided(Input(9)));
        assert_eq!(p.status().decision(), Some(Input(9)));
    }

    #[test]
    fn solo_decider_zero_steps_decides_immediately() {
        let mut p = SoloDecider::new(Input(1), 0);
        assert_eq!(p.apply(OpResult::Local), Status::Decided(Input(1)));
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut p = SoloDecider::new(Input(5), 3);
        p.apply(OpResult::Local);
        let boxed: Box<dyn Process> = Box::new(p);
        let copy = boxed.clone();
        assert_eq!(copy.snapshot(), boxed.snapshot());
        assert_eq!(copy.input(), Input(5));
    }

    #[test]
    fn snapshot_distinguishes_progress() {
        let mut a = SoloDecider::new(Input(5), 3);
        let b = SoloDecider::new(Input(5), 3);
        assert_eq!(a.snapshot(), b.snapshot());
        a.apply(OpResult::Local);
        assert_ne!(a.snapshot(), b.snapshot());
    }
}
