//! Fault plans, budgets and oracles for simulated executions.
//!
//! A [`FaultPlan`] fixes the fault environment of one execution, matching
//! Definition 3's parameters: which objects may be faulty (at most `f`),
//! which [`FaultKind`] they exhibit, and the per-object fault limit `t`
//! (bounded or unbounded). The [`FaultBudget`] does the per-execution
//! accounting; a [`FaultOracle`] decides, step by step, whether an allowed
//! fault actually happens — deterministic oracles make executions exactly
//! replayable.

use crate::ops::{FaultDecision, Op};
use ff_spec::{Bound, FaultKind, ObjectId, ProcessId, Word, BOTTOM};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// The fault environment of one execution.
///
/// Definition 3's discussion notes the model "allows us to present a
/// discussion about a mix of object types and a mix of functional
/// faults": [`FaultPlan::with_kind_for`] assigns individual objects a
/// kind different from the plan's default.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The default fault kind faulty objects exhibit.
    pub kind: FaultKind,
    /// The (at most `f`) objects that may fault in this execution.
    pub faulty: Vec<ObjectId>,
    /// Limit `t` on faults per faulty object.
    pub per_object: Bound,
    /// Per-object kind overrides (a mix of functional faults).
    pub kind_overrides: BTreeMap<ObjectId, FaultKind>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan {
            kind: FaultKind::Overriding,
            faulty: Vec::new(),
            per_object: Bound::Finite(0),
            kind_overrides: BTreeMap::new(),
        }
    }

    /// The first `f` objects may exhibit overriding faults, `t` per object.
    pub fn overriding(f: usize, t: Bound) -> Self {
        FaultPlan {
            kind: FaultKind::Overriding,
            faulty: (0..f).map(ObjectId).collect(),
            per_object: t,
            kind_overrides: BTreeMap::new(),
        }
    }

    /// The first `f` objects may exhibit silent faults, `t` per object.
    pub fn silent(f: usize, t: Bound) -> Self {
        FaultPlan {
            kind: FaultKind::Silent,
            faulty: (0..f).map(ObjectId).collect(),
            per_object: t,
            kind_overrides: BTreeMap::new(),
        }
    }

    /// Override the fault kind of one object (a mixed-fault environment).
    pub fn with_kind_for(mut self, obj: ObjectId, kind: FaultKind) -> Self {
        self.kind_overrides.insert(obj, kind);
        self
    }

    /// The fault kind `obj` exhibits under this plan.
    pub fn kind_of(&self, obj: ObjectId) -> FaultKind {
        self.kind_overrides.get(&obj).copied().unwrap_or(self.kind)
    }

    /// The canonical adversarial [`FaultDecision`] for this plan's kind,
    /// given the current cell content and the operation's arguments.
    ///
    /// For the invisible fault the adversary reports `exp` (pretending the
    /// comparison matched); for the arbitrary fault it resets the cell to
    /// `⊥` — both are the most damaging single choices for the consensus
    /// protocols studied here, and keeping them canonical keeps the
    /// explorer's branching finite.
    pub fn decision(&self, obj: ObjectId, _pre: Word, exp: Word, _new: Word) -> FaultDecision {
        match self.kind_of(obj) {
            FaultKind::Overriding => FaultDecision::Override,
            FaultKind::Silent => FaultDecision::Silent,
            FaultKind::Invisible => FaultDecision::Invisible { returned: exp },
            FaultKind::Arbitrary => FaultDecision::Arbitrary { written: BOTTOM },
            // Nonresponsiveness is handled at the executor level (the
            // operation never returns); as a *decision on the memory* it
            // acts like a silent no-op.
            FaultKind::Nonresponsive => FaultDecision::Silent,
        }
    }
}

/// Per-execution fault accounting: which objects are in the faulty set and
/// how many faults each has left.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultBudget {
    faulty: Vec<bool>,
    /// Remaining faults per object; `None` = unbounded.
    remaining: Vec<Option<u64>>,
}

impl FaultBudget {
    /// Build the budget for `plan` over a heap with `num_objects` CAS cells.
    pub fn new(plan: &FaultPlan, num_objects: usize) -> Self {
        let mut faulty = vec![false; num_objects];
        let mut remaining = vec![Some(0); num_objects];
        for &obj in &plan.faulty {
            assert!(
                obj.0 < num_objects,
                "fault plan names object {obj} but the heap has only {num_objects} CAS cells"
            );
            faulty[obj.0] = true;
            remaining[obj.0] = plan.per_object.finite();
            if plan.per_object.is_unbounded() {
                remaining[obj.0] = None;
            }
        }
        FaultBudget { faulty, remaining }
    }

    /// May `obj` still commit a fault?
    pub fn can_fault(&self, obj: ObjectId) -> bool {
        self.faulty[obj.0]
            && match self.remaining[obj.0] {
                None => true,
                Some(k) => k > 0,
            }
    }

    /// Consume one fault on `obj`. Panics if none is available — callers
    /// must check [`FaultBudget::can_fault`] first.
    pub fn consume(&mut self, obj: ObjectId) {
        assert!(self.can_fault(obj), "no fault budget left on {obj}");
        if let Some(k) = &mut self.remaining[obj.0] {
            *k -= 1;
        }
    }

    /// Number of objects in the faulty set.
    pub fn faulty_set_size(&self) -> usize {
        self.faulty.iter().filter(|&&b| b).count()
    }

    /// Exact encoding for memoization keys.
    pub fn snapshot(&self) -> Vec<u64> {
        self.remaining
            .iter()
            .map(|r| match r {
                None => u64::MAX,
                Some(k) => *k,
            })
            .collect()
    }
}

/// Step-level fault decisions, including the nonresponsive "never returns".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StepDecision {
    /// Apply this (possibly faulty) memory effect and respond.
    Apply(FaultDecision),
    /// Nonresponsive fault: the operation never responds; the process is
    /// blocked forever. (Section 3.4 — consensus is impossible with even
    /// one such fault.)
    Hang,
}

/// Decides whether each allowed fault opportunity is taken.
///
/// The oracle is consulted only for CAS steps on objects whose budget still
/// admits a fault, and only with decisions that would actually be
/// *observable* (violate the standard postconditions); the executor forces
/// [`FaultDecision::Correct`] otherwise.
pub trait FaultOracle: Send {
    /// Decide the execution of one CAS step. `pre` is the cell's current
    /// content (the oracle models the hardware, which sees it).
    fn decide(&mut self, pid: ProcessId, op: &Op, pre: Word) -> StepDecision;
}

/// Never faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverFault;

impl FaultOracle for NeverFault {
    fn decide(&mut self, _pid: ProcessId, _op: &Op, _pre: Word) -> StepDecision {
        StepDecision::Apply(FaultDecision::Correct)
    }
}

/// Takes every fault opportunity, with the plan's canonical decision — the
/// greedy adversary.
#[derive(Clone, Debug)]
pub struct GreedyFault {
    plan: FaultPlan,
}

impl GreedyFault {
    /// Greedy oracle for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        GreedyFault { plan }
    }
}

impl FaultOracle for GreedyFault {
    fn decide(&mut self, _pid: ProcessId, op: &Op, pre: Word) -> StepDecision {
        if let Op::Cas { obj, exp, new } = op {
            if self.plan.kind_of(*obj) == FaultKind::Nonresponsive {
                return StepDecision::Hang;
            }
            StepDecision::Apply(self.plan.decision(*obj, pre, *exp, *new))
        } else {
            StepDecision::Apply(FaultDecision::Correct)
        }
    }
}

/// Faults each opportunity independently with probability `p` (seeded, so
/// executions are replayable from the seed).
#[derive(Clone, Debug)]
pub struct RandomFault {
    plan: FaultPlan,
    p: f64,
    rng: SmallRng,
}

impl RandomFault {
    /// Random oracle faulting with probability `p` per opportunity.
    pub fn new(plan: FaultPlan, p: f64, seed: u64) -> Self {
        RandomFault {
            plan,
            p,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl FaultOracle for RandomFault {
    fn decide(&mut self, _pid: ProcessId, op: &Op, pre: Word) -> StepDecision {
        if let Op::Cas { obj, exp, new } = op {
            if self.rng.gen_bool(self.p) {
                if self.plan.kind_of(*obj) == FaultKind::Nonresponsive {
                    return StepDecision::Hang;
                }
                return StepDecision::Apply(self.plan.decision(*obj, pre, *exp, *new));
            }
        }
        StepDecision::Apply(FaultDecision::Correct)
    }
}

/// Faults the CAS steps of one designated process at every opportunity —
/// the *reduced model* of Theorem 18's proof, where `p1`'s CAS executions
/// are always faulty and nobody else's are.
#[derive(Clone, Debug)]
pub struct ProcessBoundFault {
    plan: FaultPlan,
    culprit: ProcessId,
}

impl ProcessBoundFault {
    /// Oracle that faults only `culprit`'s CAS steps.
    pub fn new(plan: FaultPlan, culprit: ProcessId) -> Self {
        ProcessBoundFault { plan, culprit }
    }
}

impl FaultOracle for ProcessBoundFault {
    fn decide(&mut self, pid: ProcessId, op: &Op, pre: Word) -> StepDecision {
        if pid == self.culprit {
            if let Op::Cas { obj, exp, new } = op {
                return StepDecision::Apply(self.plan.decision(*obj, pre, *exp, *new));
            }
        }
        StepDecision::Apply(FaultDecision::Correct)
    }
}

/// Replays a fixed script of step decisions, one per CAS fault opportunity,
/// then stays correct. Used to replay explorer witnesses.
#[derive(Clone, Debug)]
pub struct ScriptedFault {
    script: VecDeque<StepDecision>,
}

impl ScriptedFault {
    /// Oracle replaying `script` in order.
    pub fn new(script: impl IntoIterator<Item = StepDecision>) -> Self {
        ScriptedFault {
            script: script.into_iter().collect(),
        }
    }
}

impl FaultOracle for ScriptedFault {
    fn decide(&mut self, _pid: ProcessId, _op: &Op, _pre: Word) -> StepDecision {
        self.script
            .pop_front()
            .unwrap_or(StepDecision::Apply(FaultDecision::Correct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cas_op(obj: usize, exp: Word, new: Word) -> Op {
        Op::Cas {
            obj: ObjectId(obj),
            exp,
            new,
        }
    }

    #[test]
    fn budget_accounting() {
        let plan = FaultPlan::overriding(2, Bound::Finite(1));
        let mut b = FaultBudget::new(&plan, 3);
        assert_eq!(b.faulty_set_size(), 2);
        assert!(b.can_fault(ObjectId(0)));
        assert!(b.can_fault(ObjectId(1)));
        assert!(!b.can_fault(ObjectId(2)), "O2 is outside the faulty set");
        b.consume(ObjectId(0));
        assert!(!b.can_fault(ObjectId(0)), "t = 1 exhausted");
        assert!(b.can_fault(ObjectId(1)));
    }

    #[test]
    fn unbounded_budget_never_exhausts() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let mut b = FaultBudget::new(&plan, 1);
        for _ in 0..100 {
            assert!(b.can_fault(ObjectId(0)));
            b.consume(ObjectId(0));
        }
    }

    #[test]
    #[should_panic(expected = "no fault budget")]
    fn consume_without_budget_panics() {
        let plan = FaultPlan::none();
        let mut b = FaultBudget::new(&plan, 1);
        b.consume(ObjectId(0));
    }

    #[test]
    #[should_panic(expected = "heap has only")]
    fn plan_larger_than_heap_panics() {
        let plan = FaultPlan::overriding(2, Bound::Finite(1));
        FaultBudget::new(&plan, 1);
    }

    #[test]
    fn budget_snapshot_tracks_consumption() {
        let plan = FaultPlan::overriding(1, Bound::Finite(2));
        let mut b = FaultBudget::new(&plan, 2);
        let before = b.snapshot();
        b.consume(ObjectId(0));
        assert_ne!(before, b.snapshot());
        assert_eq!(b.snapshot(), vec![1, 0]);
    }

    #[test]
    fn mixed_kind_plan() {
        let plan = FaultPlan::overriding(2, Bound::Unbounded)
            .with_kind_for(ObjectId(1), FaultKind::Silent);
        assert_eq!(plan.kind_of(ObjectId(0)), FaultKind::Overriding);
        assert_eq!(plan.kind_of(ObjectId(1)), FaultKind::Silent);
        assert_eq!(plan.kind_of(ObjectId(9)), FaultKind::Overriding);
        // Decisions follow the per-object kind.
        assert_eq!(
            plan.decision(ObjectId(0), 7, BOTTOM, 5),
            FaultDecision::Override
        );
        assert_eq!(
            plan.decision(ObjectId(1), BOTTOM, BOTTOM, 5),
            FaultDecision::Silent
        );
    }

    #[test]
    fn mixed_kind_opportunities_differ_per_object() {
        let plan = FaultPlan::overriding(2, Bound::Unbounded)
            .with_kind_for(ObjectId(1), FaultKind::Silent);
        // Override is observable on mismatch; silent on match.
        assert!(plan.opportunity(ObjectId(0), 7, BOTTOM, 5).is_some());
        assert!(plan.opportunity(ObjectId(0), BOTTOM, BOTTOM, 5).is_none());
        assert!(plan.opportunity(ObjectId(1), BOTTOM, BOTTOM, 5).is_some());
        assert!(plan.opportunity(ObjectId(1), 7, BOTTOM, 5).is_none());
    }

    #[test]
    fn never_fault_oracle() {
        let mut o = NeverFault;
        assert_eq!(
            o.decide(ProcessId(0), &cas_op(0, BOTTOM, 1), BOTTOM),
            StepDecision::Apply(FaultDecision::Correct)
        );
    }

    #[test]
    fn greedy_oracle_uses_plan_kind() {
        let mut o = GreedyFault::new(FaultPlan::overriding(1, Bound::Unbounded));
        assert_eq!(
            o.decide(ProcessId(0), &cas_op(0, BOTTOM, 1), 7),
            StepDecision::Apply(FaultDecision::Override)
        );
        let mut o = GreedyFault::new(FaultPlan::silent(1, Bound::Unbounded));
        assert_eq!(
            o.decide(ProcessId(0), &cas_op(0, BOTTOM, 1), BOTTOM),
            StepDecision::Apply(FaultDecision::Silent)
        );
    }

    #[test]
    fn greedy_nonresponsive_hangs() {
        let plan = FaultPlan {
            kind: FaultKind::Nonresponsive,
            faulty: vec![ObjectId(0)],
            per_object: Bound::Finite(1),
            kind_overrides: Default::default(),
        };
        let mut o = GreedyFault::new(plan);
        assert_eq!(
            o.decide(ProcessId(0), &cas_op(0, BOTTOM, 1), BOTTOM),
            StepDecision::Hang
        );
    }

    #[test]
    fn process_bound_oracle_targets_culprit_only() {
        let mut o =
            ProcessBoundFault::new(FaultPlan::overriding(1, Bound::Unbounded), ProcessId(1));
        assert_eq!(
            o.decide(ProcessId(0), &cas_op(0, BOTTOM, 1), 7),
            StepDecision::Apply(FaultDecision::Correct)
        );
        assert_eq!(
            o.decide(ProcessId(1), &cas_op(0, BOTTOM, 1), 7),
            StepDecision::Apply(FaultDecision::Override)
        );
    }

    #[test]
    fn scripted_oracle_replays_then_stays_correct() {
        let mut o = ScriptedFault::new([
            StepDecision::Apply(FaultDecision::Override),
            StepDecision::Hang,
        ]);
        let op = cas_op(0, BOTTOM, 1);
        assert_eq!(
            o.decide(ProcessId(0), &op, 7),
            StepDecision::Apply(FaultDecision::Override)
        );
        assert_eq!(o.decide(ProcessId(0), &op, 7), StepDecision::Hang);
        assert_eq!(
            o.decide(ProcessId(0), &op, 7),
            StepDecision::Apply(FaultDecision::Correct)
        );
    }

    #[test]
    fn random_oracle_is_replayable() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let mut a = RandomFault::new(plan.clone(), 0.5, 42);
        let mut b = RandomFault::new(plan, 0.5, 42);
        let op = cas_op(0, BOTTOM, 1);
        for _ in 0..50 {
            assert_eq!(
                a.decide(ProcessId(0), &op, 7),
                b.decide(ProcessId(0), &op, 7)
            );
        }
    }
}
