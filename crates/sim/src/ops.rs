//! The one-shared-step-per-step discipline: the operations a simulated
//! process may request, the fault decisions an execution may apply to
//! them, and the results handed back.
//!
//! The paper's execution model (Section 2) is an alternating sequence of
//! states and atomic steps, where a step performs local computation plus at
//! most one shared-object operation. Simulated processes surface exactly
//! that interface: each scheduler turn asks the process for its next [`Op`]
//! and feeds it back the [`OpResult`].

use crate::heap::RegId;
use ff_spec::{ObjectId, Word};

/// A shared-memory operation requested by a process for its next step.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `old ← CAS(obj, exp, new)` — the only operation CAS objects expose.
    Cas {
        /// Target CAS object.
        obj: ObjectId,
        /// Expected value.
        exp: Word,
        /// New value.
        new: Word,
    },
    /// Read a read/write register.
    Read(RegId),
    /// Write a read/write register.
    Write(RegId, Word),
    /// A purely local step (no shared-memory access).
    Local,
}

impl Op {
    /// The CAS object targeted by this op, if it is a CAS.
    pub fn cas_target(&self) -> Option<ObjectId> {
        match self {
            Op::Cas { obj, .. } => Some(*obj),
            _ => None,
        }
    }
}

/// How the execution chose to (mis)execute a CAS step.
///
/// Only decisions that can actually violate the standard postconditions
/// are *faults*; e.g. [`FaultDecision::Override`] on a matching comparison
/// yields a correct record and consumes no fault budget.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultDecision {
    /// Execute per the sequential specification.
    Correct,
    /// Overriding fault (Section 3.3): write unconditionally.
    Override,
    /// Silent fault (Section 3.4): suppress the write.
    Silent,
    /// Invisible fault (Section 3.4): return a wrong old value.
    Invisible {
        /// The incorrect old value to return.
        returned: Word,
    },
    /// Arbitrary fault (Section 3.4): write an adversary-chosen value.
    Arbitrary {
        /// The value to write.
        written: Word,
    },
}

impl FaultDecision {
    /// Would applying this decision to a cell currently holding `pre`,
    /// with a CAS expecting `exp` and writing `new`, produce a record that
    /// violates the standard postconditions (i.e. an actual fault per
    /// Definition 1)?
    pub fn observable(self, pre: Word, exp: Word, new: Word) -> bool {
        match self {
            FaultDecision::Correct => false,
            // Overriding differs from correct only when the comparison
            // fails and the written value actually changes the register
            // content (writing the identical value back is indistinguishable).
            FaultDecision::Override => pre != exp && new != pre,
            // Silent differs only when the comparison succeeds and the
            // suppressed write would have changed the content.
            FaultDecision::Silent => pre == exp && new != pre,
            FaultDecision::Invisible { returned } => returned != pre,
            FaultDecision::Arbitrary { written } => {
                let correct_post = if pre == exp { new } else { pre };
                written != correct_post
            }
        }
    }
}

/// The result of a step, handed back to the process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpResult {
    /// The old value returned by a CAS.
    Cas {
        /// The value the operation reported as the previous content.
        old: Word,
    },
    /// The value read from a register.
    Read(Word),
    /// A register write completed.
    Write,
    /// A local step completed.
    Local,
}

impl OpResult {
    /// The old value, for CAS results. Panics on other variants — protocol
    /// machines only call this right after requesting a CAS.
    pub fn cas_old(&self) -> Word {
        match self {
            OpResult::Cas { old } => *old,
            other => panic!("expected CAS result, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_spec::BOTTOM;

    #[test]
    fn cas_target_extraction() {
        let op = Op::Cas {
            obj: ObjectId(2),
            exp: BOTTOM,
            new: 1,
        };
        assert_eq!(op.cas_target(), Some(ObjectId(2)));
        assert_eq!(Op::Local.cas_target(), None);
        assert_eq!(Op::Read(RegId(0)).cas_target(), None);
    }

    #[test]
    fn override_observability() {
        // Mismatch + changing write: observable.
        assert!(FaultDecision::Override.observable(7, BOTTOM, 5));
        // Matching comparison: not observable.
        assert!(!FaultDecision::Override.observable(BOTTOM, BOTTOM, 5));
        // Mismatch but writing back the same value: not observable.
        assert!(!FaultDecision::Override.observable(7, BOTTOM, 7));
    }

    #[test]
    fn silent_observability() {
        assert!(FaultDecision::Silent.observable(BOTTOM, BOTTOM, 5));
        assert!(!FaultDecision::Silent.observable(7, BOTTOM, 5));
        assert!(!FaultDecision::Silent.observable(5, 5, 5));
    }

    #[test]
    fn invisible_and_arbitrary_observability() {
        assert!(FaultDecision::Invisible { returned: 9 }.observable(7, BOTTOM, 5));
        assert!(!FaultDecision::Invisible { returned: 7 }.observable(7, BOTTOM, 5));
        assert!(FaultDecision::Arbitrary { written: 9 }.observable(7, BOTTOM, 5));
        // Writing exactly the correct post-state is indistinguishable.
        assert!(!FaultDecision::Arbitrary { written: 7 }.observable(7, BOTTOM, 5));
        assert!(!FaultDecision::Arbitrary { written: 5 }.observable(BOTTOM, BOTTOM, 5));
    }

    #[test]
    fn correct_is_never_observable() {
        assert!(!FaultDecision::Correct.observable(7, BOTTOM, 5));
    }

    #[test]
    fn cas_old_accessor() {
        assert_eq!(OpResult::Cas { old: 3 }.cas_old(), 3);
    }

    #[test]
    #[should_panic(expected = "expected CAS result")]
    fn cas_old_panics_on_wrong_variant() {
        OpResult::Local.cas_old();
    }
}
