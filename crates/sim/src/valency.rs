//! Valency analysis — the vocabulary of the impossibility proofs.
//!
//! Following Herlihy \[26\] (and Section 5.1 of the paper), a state of a
//! consensus execution is *multivalent* if at least two decision values
//! remain reachable, and *univalent* (`x`-valent) when only one does. A
//! *decision step* carries the system from a multivalent state to a
//! univalent one; a *critical state* is a multivalent state all of whose
//! successors are univalent. This module computes reachable decision sets
//! (exactly, with memoization), classifies states, and hunts for critical
//! states — mechanizing the proof technique of Theorem 18.

use crate::ops::Op;
use crate::state::{Choice, SimState};
use ff_spec::ProcessId;
use std::collections::{BTreeSet, HashMap};

/// The valency of a state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Valency {
    /// Exactly one decision value is reachable.
    Univalent(u32),
    /// Two or more decision values are reachable.
    Multivalent(BTreeSet<u32>),
    /// No decision is reachable within the analyzer's bounds (e.g. every
    /// path was cut by a cycle) — reported rather than guessed.
    Unknown,
}

/// Memoizing analyzer of reachable decision values.
#[derive(Default)]
pub struct ValencyAnalyzer {
    memo: HashMap<Vec<u64>, BTreeSet<u32>>,
    /// `true` iff a cycle was cut during analysis (results are then lower
    /// bounds on the reachable decision sets).
    pub cycle_cut: bool,
}

impl ValencyAnalyzer {
    /// A fresh analyzer (memo persists across queries on the same
    /// configuration, so interleaved queries stay cheap).
    pub fn new() -> Self {
        Self::default()
    }

    /// The set of decision values reachable from `state` (over all
    /// schedules and in-budget fault patterns). At violating terminals the
    /// set contains every decided value.
    pub fn decisions_from(&mut self, state: &SimState) -> BTreeSet<u32> {
        let mut on_path = BTreeSet::new();
        self.decisions_rec(state, &mut on_path)
    }

    fn decisions_rec(
        &mut self,
        state: &SimState,
        on_path: &mut BTreeSet<Vec<u64>>,
    ) -> BTreeSet<u32> {
        if state.is_terminal() {
            return state
                .outcomes()
                .iter()
                .filter_map(|o| o.decision.map(|d| d.0))
                .collect();
        }
        let key = state.key();
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }
        if on_path.contains(&key) {
            // Back-edge: cut the cycle; the caller's union over other
            // branches still collects every decision reachable acyclically.
            self.cycle_cut = true;
            return BTreeSet::new();
        }
        on_path.insert(key.clone());
        let mut out = BTreeSet::new();
        for choice in state.choices() {
            let succ = state.successor(choice);
            out.extend(self.decisions_rec(&succ, on_path));
        }
        on_path.remove(&key);
        self.memo.insert(key, out.clone());
        out
    }

    /// Classify `state`.
    pub fn valency(&mut self, state: &SimState) -> Valency {
        let ds = self.decisions_from(state);
        match ds.len() {
            0 => Valency::Unknown,
            1 => Valency::Univalent(*ds.iter().next().unwrap()),
            _ => Valency::Multivalent(ds),
        }
    }
}

/// A critical state found by [`find_critical_state`]: multivalent, with
/// every available choice leading to a univalent state.
#[derive(Clone, Debug)]
pub struct CriticalState {
    /// The choice path from the initial state to the critical state.
    pub path: Vec<Choice>,
    /// The decision values still reachable at the critical state.
    pub reachable: BTreeSet<u32>,
    /// Each pending process's next operation at the critical state.
    pub pending_ops: Vec<(ProcessId, Op)>,
    /// For each available choice, the single value its successor commits
    /// to.
    pub successor_valencies: Vec<(Choice, u32)>,
}

/// Search (DFS) for a critical state reachable from `initial`. Returns
/// `None` if none exists within `max_states` expanded states — e.g.
/// because the initial state is already univalent.
pub fn find_critical_state(initial: &SimState, max_states: u64) -> Option<CriticalState> {
    let mut analyzer = ValencyAnalyzer::new();
    if !matches!(analyzer.valency(initial), Valency::Multivalent(_)) {
        return None;
    }
    let mut visited = std::collections::HashSet::new();
    let mut stack: Vec<(SimState, Vec<Choice>)> = vec![(initial.clone(), Vec::new())];
    let mut expanded = 0u64;
    while let Some((state, path)) = stack.pop() {
        if !visited.insert(state.key()) {
            continue;
        }
        expanded += 1;
        if expanded > max_states {
            return None;
        }
        let choices = state.choices();
        let mut succ_valencies = Vec::with_capacity(choices.len());
        let mut all_univalent = true;
        let mut multivalent_succs = Vec::new();
        for &choice in &choices {
            let succ = state.successor(choice);
            match analyzer.valency(&succ) {
                Valency::Univalent(v) => succ_valencies.push((choice, v)),
                Valency::Multivalent(_) => {
                    all_univalent = false;
                    multivalent_succs.push((choice, succ));
                }
                Valency::Unknown => {
                    all_univalent = false;
                }
            }
        }
        if all_univalent && !choices.is_empty() {
            let reachable = analyzer.decisions_from(&state);
            let pending_ops = state
                .runnable()
                .into_iter()
                .map(|pid| (pid, state.processes[pid.0].next_op()))
                .collect();
            return Some(CriticalState {
                path,
                reachable,
                pending_ops,
                successor_valencies: succ_valencies,
            });
        }
        for (choice, succ) in multivalent_succs {
            let mut next_path = path.clone();
            next_path.push(choice);
            stack.push((succ, next_path));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_ctl::FaultPlan;
    use crate::heap::Heap;
    use crate::ops::OpResult;
    use crate::process::{Process, Status};
    use ff_spec::{Input, ObjectId, BOTTOM};

    /// Herlihy one-shot (as in the explorer tests).
    #[derive(Clone)]
    struct OneShot {
        input: Input,
        status: Status,
    }
    impl OneShot {
        fn new(v: u32) -> Self {
            OneShot {
                input: Input(v),
                status: Status::Running,
            }
        }
    }
    impl Process for OneShot {
        fn next_op(&self) -> Op {
            Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: self.input.to_word(),
            }
        }
        fn apply(&mut self, result: OpResult) -> Status {
            let old = result.cas_old();
            self.status = Status::Decided(Input::from_word(old).unwrap_or(self.input));
            self.status
        }
        fn status(&self) -> Status {
            self.status
        }
        fn input(&self) -> Input {
            self.input
        }
        fn snapshot(&self) -> Vec<u64> {
            vec![
                self.input.0 as u64,
                match self.status {
                    Status::Running => 0,
                    Status::Decided(v) => 1 + v.0 as u64,
                },
            ]
        }
        fn box_clone(&self) -> Box<dyn Process> {
            Box::new(self.clone())
        }
    }

    fn herlihy_state(inputs: &[u32]) -> SimState {
        let procs: Vec<Box<dyn Process>> = inputs
            .iter()
            .map(|&v| Box::new(OneShot::new(v)) as Box<dyn Process>)
            .collect();
        SimState::new(procs, Heap::new(1, 0), FaultPlan::none())
    }

    #[test]
    fn initial_state_with_distinct_inputs_is_multivalent() {
        let mut a = ValencyAnalyzer::new();
        let s = herlihy_state(&[10, 20]);
        assert_eq!(
            a.valency(&s),
            Valency::Multivalent(BTreeSet::from([10, 20]))
        );
        assert!(!a.cycle_cut);
    }

    #[test]
    fn state_after_first_cas_is_univalent() {
        let mut a = ValencyAnalyzer::new();
        let s = herlihy_state(&[10, 20]);
        // Let p0 take its (correct) CAS step: the protocol commits to 10.
        let choice = s.choices()[0];
        assert_eq!(choice.pid, ProcessId(0));
        let after = s.successor(choice);
        assert_eq!(a.valency(&after), Valency::Univalent(10));
    }

    #[test]
    fn equal_inputs_are_univalent_from_the_start() {
        let mut a = ValencyAnalyzer::new();
        let s = herlihy_state(&[7, 7]);
        assert_eq!(a.valency(&s), Valency::Univalent(7));
    }

    #[test]
    fn critical_state_of_herlihy_is_the_initial_state() {
        // For the one-shot protocol, the very first CAS is the decision
        // step: the initial state is critical, and both pending ops are
        // CASes on the same object — exactly the configuration the
        // impossibility arguments drive executions into.
        let s = herlihy_state(&[10, 20]);
        let crit = find_critical_state(&s, 10_000).expect("critical state must exist");
        assert!(crit.path.is_empty(), "one-shot: initial state is critical");
        assert_eq!(crit.reachable, BTreeSet::from([10, 20]));
        assert_eq!(crit.pending_ops.len(), 2);
        assert!(crit
            .pending_ops
            .iter()
            .all(|(_, op)| op.cas_target() == Some(ObjectId(0))));
        // Each successor commits to the stepping process's input.
        for (choice, v) in &crit.successor_valencies {
            let expected = if choice.pid == ProcessId(0) { 10 } else { 20 };
            assert_eq!(*v, expected);
        }
    }

    #[test]
    fn pure_cycle_reports_unknown() {
        // A never-deciding flipper: every path cycles, so no decision is
        // reachable — the analyzer reports Unknown and flags the cut.
        #[derive(Clone)]
        struct Flipper {
            phase: u8,
        }
        impl Process for Flipper {
            fn next_op(&self) -> Op {
                Op::Write(crate::heap::RegId(0), (self.phase as u64) % 2)
            }
            fn apply(&mut self, _r: OpResult) -> Status {
                self.phase = (self.phase + 1) % 2;
                Status::Running
            }
            fn status(&self) -> Status {
                Status::Running
            }
            fn input(&self) -> Input {
                Input(0)
            }
            fn snapshot(&self) -> Vec<u64> {
                vec![self.phase as u64]
            }
            fn box_clone(&self) -> Box<dyn Process> {
                Box::new(self.clone())
            }
        }
        let state = SimState::new(
            vec![Box::new(Flipper { phase: 0 })],
            Heap::new(0, 1),
            FaultPlan::none(),
        );
        let mut a = ValencyAnalyzer::new();
        assert_eq!(a.valency(&state), Valency::Unknown);
        assert!(a.cycle_cut);
    }

    #[test]
    fn no_critical_state_when_univalent() {
        let s = herlihy_state(&[7, 7]);
        assert!(find_critical_state(&s, 10_000).is_none());
    }
}
