//! Exhaustive state-space exploration: the proof engine of the
//! reproduction.
//!
//! The explorer enumerates **every** interleaving of process steps and
//! **every** allowed fault decision (within the `(f, t)` budget) from an
//! initial [`SimState`]. Upper-bound experiments (Theorems 4–6) assert
//! that no reachable terminal state violates consensus; lower-bound
//! experiments (Theorems 18–19) assert that a violating execution *is*
//! reachable, and extract it as a replayable [`Witness`].
//!
//! Memoization uses exact state keys (no hashing of lossy fingerprints),
//! so pruning can never mask a reachable violation. Cycles in the state
//! graph — which witness possible nontermination, e.g. unbounded silent
//! faults starving the Herlihy protocol (Section 3.4) — are detected and
//! reported.

use crate::executor::{run, RunConfig, RunReport};
use crate::fault_ctl::{FaultPlan, ScriptedFault};
use crate::heap::Heap;
use crate::process::Process;
use crate::scheduler::Scripted;
use crate::state::{Choice, SimState};
use ff_spec::{check_consensus, ConsensusViolation, Outcome};
use std::collections::{BTreeSet, HashSet};

/// Per-kind counts of violating terminal states — the raw material of
/// graceful-degradation analysis (which consensus properties survive when
/// an execution leaves the tolerance envelope).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViolationCounts {
    /// Terminals with a validity violation.
    pub validity: u64,
    /// Terminals with a consistency violation.
    pub consistency: u64,
    /// Terminals with a wait-freedom violation.
    pub wait_freedom: u64,
    /// Terminals violating at least one property. Tracked directly: a
    /// terminal violating several properties still counts once, and
    /// terminals violating *different* properties each count — so this is
    /// neither the max nor the sum of the per-kind counters.
    pub violating_terminals: u64,
}

impl ViolationCounts {
    /// Absorb one terminal's violation list (each kind counted once per
    /// terminal).
    pub fn absorb(&mut self, violations: &[ConsensusViolation]) {
        let mut v = (false, false, false);
        for x in violations {
            match x {
                ConsensusViolation::Validity { .. } => v.0 = true,
                ConsensusViolation::Consistency { .. } => v.1 = true,
                ConsensusViolation::WaitFreedom { .. } => v.2 = true,
            }
        }
        self.validity += v.0 as u64;
        self.consistency += v.1 as u64;
        self.wait_freedom += v.2 as u64;
        if v.0 || v.1 || v.2 {
            self.violating_terminals += 1;
        }
    }

    /// Total violating terminals observed (by any kind).
    pub fn any(&self) -> u64 {
        self.violating_terminals
    }

    /// Merge another set of counts into this one (parallel exploration
    /// combines per-worker counts with this).
    pub fn merge(&mut self, other: &ViolationCounts) {
        self.validity += other.validity;
        self.consistency += other.consistency;
        self.wait_freedom += other.wait_freedom;
        self.violating_terminals += other.violating_terminals;
    }
}

/// Configuration of an exhaustive exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExplorerConfig {
    /// Stop (reporting truncation) after expanding this many distinct
    /// states.
    pub max_states: u64,
    /// Do not explore paths deeper than this many steps.
    pub max_depth: usize,
    /// Return as soon as the first violation is found.
    pub stop_at_first_violation: bool,
    /// Worker threads for [`crate::explore_parallel`]. `1` (the default)
    /// means sequential exploration; the sequential [`explore`] and
    /// [`explore_bfs`] ignore this knob.
    pub threads: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            max_states: 2_000_000,
            max_depth: 100_000,
            stop_at_first_violation: true,
            threads: 1,
        }
    }
}

/// A replayable violating execution.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The choice sequence from the initial state to the violating
    /// terminal.
    pub choices: Vec<Choice>,
    /// The outcomes at the violating terminal.
    pub outcomes: Vec<Outcome>,
    /// The consensus properties violated.
    pub violations: Vec<ConsensusViolation>,
}

impl Witness {
    /// Re-execute this witness through the run-to-completion driver,
    /// producing a full trace for display. `processes`/`heap`/`plan` must
    /// be the same initial configuration the exploration started from.
    pub fn replay(
        &self,
        processes: Vec<Box<dyn Process>>,
        heap: Heap,
        plan: &FaultPlan,
    ) -> RunReport {
        let mut scheduler = Scripted::new(self.choices.iter().map(|c| c.pid));
        let mut oracle = ScriptedFault::new(
            self.choices
                .iter()
                .filter(|c| c.had_opportunity)
                .map(|c| c.decision),
        );
        run(
            processes,
            heap,
            plan,
            &mut scheduler,
            &mut oracle,
            RunConfig::default(),
        )
    }
}

/// The result of an exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Distinct non-terminal states expanded.
    pub states_expanded: u64,
    /// Terminal states reached (counted per path; a terminal reached along
    /// many paths counts once per arrival before memoization prunes).
    pub terminals: u64,
    /// The first violating execution found, if any.
    pub violation: Option<Witness>,
    /// Agreed decision values seen across consistent terminals.
    pub agreed_values: BTreeSet<u32>,
    /// `true` iff the exploration hit `max_states` or `max_depth`.
    pub truncated: bool,
    /// Deepest path explored. Traversal-dependent: each memoized state
    /// contributes the depth of the tree path it was first expanded
    /// from, so BFS (shortest paths) reports a lower bound, DFS an
    /// equal-or-larger value, and the parallel explorer a value that
    /// depends on how work was donated between threads. All other
    /// report fields are traversal-independent.
    pub max_depth_seen: usize,
    /// `true` iff a cycle in the state graph was found (an adversary can
    /// prevent termination: a wait-freedom violation in the unbounded
    /// sense).
    pub cycle_found: bool,
    /// Per-kind counts of violating terminals (populate fully by running
    /// with `stop_at_first_violation: false`).
    pub violation_counts: ViolationCounts,
}

impl ExploreReport {
    /// `true` iff exploration was exhaustive (not truncated) and found
    /// neither violations nor cycles: the configuration provably satisfies
    /// consensus for every schedule and fault pattern within budget.
    pub fn verified(&self) -> bool {
        !self.truncated && self.violation.is_none() && !self.cycle_found
    }
}

struct Frame {
    state: SimState,
    choices: Vec<Choice>,
    next: usize,
    /// The choice that produced this frame's state (`None` for the root).
    leading: Option<Choice>,
    key: Vec<u64>,
}

/// Exhaustively explore all executions from `initial`.
pub fn explore(initial: SimState, config: ExplorerConfig) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut on_stack: HashSet<Vec<u64>> = HashSet::new();

    if initial.is_terminal() {
        report.terminals = 1;
        let outcomes = initial.outcomes();
        let verdict = check_consensus(&outcomes, None);
        if let Some(agreed) = verdict.agreed {
            report.agreed_values.insert(agreed.0);
        }
        if !verdict.ok() {
            report.violation_counts.absorb(&verdict.violations);
            report.violation = Some(Witness {
                choices: Vec::new(),
                outcomes,
                violations: verdict.violations,
            });
        }
        return report;
    }

    let root_key = initial.key();
    visited.insert(root_key.clone());
    on_stack.insert(root_key.clone());
    report.states_expanded = 1;
    let mut stack = vec![Frame {
        choices: initial.choices(),
        state: initial,
        next: 0,
        leading: None,
        key: root_key,
    }];

    while let Some(frame) = stack.last_mut() {
        if frame.next >= frame.choices.len() {
            on_stack.remove(&frame.key);
            stack.pop();
            continue;
        }
        let choice = frame.choices[frame.next];
        frame.next += 1;

        let succ = frame.state.successor(choice);
        let depth = stack.len(); // steps taken to reach succ
        report.max_depth_seen = report.max_depth_seen.max(depth);

        if succ.is_terminal() {
            report.terminals += 1;
            let outcomes = succ.outcomes();
            let verdict = check_consensus(&outcomes, None);
            if let Some(agreed) = verdict.agreed {
                report.agreed_values.insert(agreed.0);
            }
            if !verdict.ok() {
                report.violation_counts.absorb(&verdict.violations);
            }
            if !verdict.ok() && report.violation.is_none() {
                let mut choices: Vec<Choice> = stack.iter().filter_map(|f| f.leading).collect();
                choices.push(choice);
                report.violation = Some(Witness {
                    choices,
                    outcomes,
                    violations: verdict.violations,
                });
                if config.stop_at_first_violation {
                    return report;
                }
            }
            continue;
        }

        let key = succ.key();
        if on_stack.contains(&key) {
            report.cycle_found = true;
            continue;
        }
        if !visited.insert(key.clone()) {
            continue;
        }
        report.states_expanded += 1;
        if report.states_expanded >= config.max_states {
            report.truncated = true;
            return report;
        }
        if depth >= config.max_depth {
            report.truncated = true;
            continue;
        }
        on_stack.insert(key.clone());
        stack.push(Frame {
            choices: succ.choices(),
            state: succ,
            next: 0,
            leading: Some(choice),
            key,
        });
    }

    report
}

/// Breadth-first exploration: like [`explore`], but visits states in
/// nondecreasing path length, so the first violation found is a
/// **shortest** violating execution — the most readable witness for a
/// lower-bound report. Costs more memory than the DFS (the frontier holds
/// cloned states); prefer [`explore`] for pure verification.
pub fn explore_bfs(initial: SimState, config: ExplorerConfig) -> ExploreReport {
    use std::collections::VecDeque;

    let mut report = ExploreReport::default();
    let mut visited: HashSet<Vec<u64>> = HashSet::new();

    if initial.is_terminal() {
        return explore(initial, config); // degenerate case: same handling
    }

    visited.insert(initial.key());
    report.states_expanded = 1;
    let mut frontier: VecDeque<(SimState, Vec<Choice>)> = VecDeque::new();
    frontier.push_back((initial, Vec::new()));

    while let Some((state, path)) = frontier.pop_front() {
        if path.len() >= config.max_depth {
            report.truncated = true;
            continue;
        }
        for choice in state.choices() {
            let succ = state.successor(choice);
            // Depth of succ: every step on `path` plus this one. Counted
            // here (not at queue-pop) so terminal steps — which are never
            // enqueued — contribute, matching the DFS explorer.
            report.max_depth_seen = report.max_depth_seen.max(path.len() + 1);
            if succ.is_terminal() {
                report.terminals += 1;
                let outcomes = succ.outcomes();
                let verdict = check_consensus(&outcomes, None);
                if let Some(agreed) = verdict.agreed {
                    report.agreed_values.insert(agreed.0);
                }
                if !verdict.ok() {
                    // Counted for every violating terminal, not just the
                    // first: full-scan reports (stop_at_first_violation:
                    // false) depend on complete counts, same as `explore`.
                    report.violation_counts.absorb(&verdict.violations);
                }
                if !verdict.ok() && report.violation.is_none() {
                    let mut choices = path.clone();
                    choices.push(choice);
                    report.violation = Some(Witness {
                        choices,
                        outcomes,
                        violations: verdict.violations,
                    });
                    if config.stop_at_first_violation {
                        return report;
                    }
                }
                continue;
            }
            let key = succ.key();
            if !visited.insert(key) {
                // Already reached at an equal-or-smaller depth (BFS order):
                // revisiting cannot shorten a witness. Cycles are detected
                // by the DFS explorer, not here.
                continue;
            }
            report.states_expanded += 1;
            if report.states_expanded >= config.max_states {
                report.truncated = true;
                return report;
            }
            let mut next_path = path.clone();
            next_path.push(choice);
            frontier.push_back((succ, next_path));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;
    use crate::ops::{Op, OpResult};
    use crate::process::{Process, SoloDecider, Status};
    use ff_spec::{Bound, Input, ObjectId, BOTTOM};

    fn solos(inputs: &[u32], steps: u64) -> Vec<Box<dyn Process>> {
        inputs
            .iter()
            .map(|&v| Box::new(SoloDecider::new(Input(v), steps)) as Box<dyn Process>)
            .collect()
    }

    /// The naive Herlihy one-shot: CAS(O0, ⊥, input), decide winner.
    #[derive(Clone)]
    struct OneShot {
        input: Input,
        status: Status,
    }
    impl OneShot {
        fn new(v: u32) -> Self {
            OneShot {
                input: Input(v),
                status: Status::Running,
            }
        }
    }
    impl Process for OneShot {
        fn next_op(&self) -> Op {
            Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: self.input.to_word(),
            }
        }
        fn apply(&mut self, result: OpResult) -> Status {
            let old = result.cas_old();
            let decided = Input::from_word(old).unwrap_or(self.input);
            self.status = Status::Decided(decided);
            self.status
        }
        fn status(&self) -> Status {
            self.status
        }
        fn input(&self) -> Input {
            self.input
        }
        fn snapshot(&self) -> Vec<u64> {
            vec![
                self.input.0 as u64,
                match self.status {
                    Status::Running => 0,
                    Status::Decided(v) => 1 + v.0 as u64,
                },
            ]
        }
        fn box_clone(&self) -> Box<dyn Process> {
            Box::new(self.clone())
        }
    }

    fn one_shots(inputs: &[u32]) -> Vec<Box<dyn Process>> {
        inputs
            .iter()
            .map(|&v| Box::new(OneShot::new(v)) as Box<dyn Process>)
            .collect()
    }

    #[test]
    fn violation_counts_track_disjoint_kinds_exactly() {
        use ff_spec::ProcessId;
        let validity = ConsensusViolation::Validity {
            process: ProcessId(0),
            decided: Input(9),
            inputs: vec![Input(1)],
        };
        let consistency = ConsensusViolation::Consistency {
            a: (ProcessId(0), Input(1)),
            b: (ProcessId(1), Input(2)),
        };
        let wait_freedom = ConsensusViolation::WaitFreedom {
            process: ProcessId(2),
            steps: 7,
            budget: Some(5),
        };
        let mut c = ViolationCounts::default();
        c.absorb(std::slice::from_ref(&validity));
        c.absorb(std::slice::from_ref(&consistency));
        c.absorb(std::slice::from_ref(&wait_freedom));
        // A terminal violating two properties still counts once.
        c.absorb(&[validity, consistency]);
        // A clean terminal counts zero.
        c.absorb(&[]);
        assert_eq!((c.validity, c.consistency, c.wait_freedom), (2, 2, 1));
        // Four distinct violating terminals. The old max-of-kinds any()
        // reported 2 here, undercounting disjoint violations.
        assert_eq!(c.any(), 4);

        let mut merged = ViolationCounts::default();
        merged.merge(&c);
        merged.merge(&c);
        assert_eq!(merged.any(), 8);
        assert_eq!(merged.validity, 4);
    }

    #[test]
    fn bfs_report_matches_dfs_field_by_field() {
        // Full-scan (stop_at_first_violation: false) on a violating
        // configuration: BFS must produce the same aggregate accounting
        // as DFS — violating-terminal counts per kind, terminals,
        // agreed values, and deepest path including terminal steps.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let mk = || SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone());
        let cfg = ExplorerConfig {
            stop_at_first_violation: false,
            ..ExplorerConfig::default()
        };
        let dfs = explore(mk(), cfg);
        let bfs = explore_bfs(mk(), cfg);
        assert_eq!(dfs.states_expanded, bfs.states_expanded);
        assert_eq!(dfs.terminals, bfs.terminals);
        assert_eq!(dfs.agreed_values, bfs.agreed_values);
        assert_eq!(dfs.violation_counts, bfs.violation_counts);
        // max_depth_seen is traversal-dependent (DFS discovers states
        // along tree paths that may exceed the shortest path): BFS is a
        // lower bound, never larger.
        assert!(dfs.max_depth_seen >= bfs.max_depth_seen);
        assert_eq!(dfs.truncated, bfs.truncated);
        assert!(dfs.violation_counts.any() > 0, "{dfs:?}");
        assert!(
            dfs.violation.is_some() && bfs.violation.is_some(),
            "both must surface a witness"
        );
    }

    #[test]
    fn trivial_processes_verify() {
        // SoloDeciders decide their own inputs; with equal inputs every
        // terminal agrees, so the exploration verifies.
        let state = SimState::new(solos(&[1, 1], 2), Heap::new(1, 0), FaultPlan::none());
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
        assert!(report.terminals >= 1);
        assert_eq!(report.agreed_values, BTreeSet::from([1]));
    }

    #[test]
    fn solo_deciders_with_distinct_inputs_violate_consistency() {
        let state = SimState::new(solos(&[1, 2], 1), Heap::new(1, 0), FaultPlan::none());
        let report = explore(state, ExplorerConfig::default());
        assert!(report.violation.is_some());
        let w = report.violation.unwrap();
        assert!(w
            .violations
            .iter()
            .any(|v| matches!(v, ConsensusViolation::Consistency { .. })));
    }

    #[test]
    fn fault_free_one_shot_verifies_exhaustively() {
        // Herlihy's protocol is correct without faults: no interleaving of
        // 3 processes violates consensus (Section 2).
        let state = SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), FaultPlan::none());
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
        // Each of the three processes can be first: all three values
        // appear as agreed outcomes across schedules.
        assert_eq!(
            report.agreed_values,
            BTreeSet::from([10, 20, 30]),
            "{report:?}"
        );
    }

    #[test]
    fn faulty_one_shot_yields_violation_witness() {
        // With one unboundedly-faulty object, the naive protocol breaks —
        // and the explorer finds a concrete witness (E9's mechanism).
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone());
        let report = explore(state, ExplorerConfig::default());
        assert!(report.violation.is_some(), "{report:?}");
        let w = report.violation.as_ref().unwrap();

        // The witness must replay to the same outcomes.
        let replayed = w.replay(one_shots(&[10, 20, 30]), Heap::new(1, 0), &plan);
        assert_eq!(replayed.outcomes, {
            let mut outs = w.outcomes.clone();
            // Witness outcomes carry steps = 0; align for comparison.
            for (r, o) in replayed.outcomes.iter().zip(outs.iter_mut()) {
                o.steps = r.steps;
            }
            outs
        });
        let verdict = check_consensus(&replayed.outcomes, None);
        assert!(!verdict.ok(), "replay must reproduce the violation");
    }

    #[test]
    fn two_process_one_shot_with_faults_is_still_safe() {
        // Theorem 4's anomaly, mechanically: with n = 2 even unbounded
        // overriding faults cannot break the single-object protocol,
        // because an overriding write by the loser returns the winner's
        // value (old) and the loser adopts it.
        //
        // NOTE: this is the *Figure 1* protocol in disguise: OneShot
        // adopts `old` when old ≠ ⊥, exactly like decide() in Figure 1.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20]), Heap::new(1, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn max_states_truncation_is_reported() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20]), Heap::new(1, 0), plan);
        let report = explore(
            state,
            ExplorerConfig {
                max_states: 2,
                max_depth: 100,
                stop_at_first_violation: true,
                threads: 1,
            },
        );
        assert!(report.truncated);
        assert!(!report.verified());
    }

    #[test]
    fn max_depth_truncation_is_reported() {
        let state = SimState::new(solos(&[1, 1], 50), Heap::new(1, 0), FaultPlan::none());
        let report = explore(
            state,
            ExplorerConfig {
                max_states: 1_000_000,
                max_depth: 3,
                stop_at_first_violation: true,
                threads: 1,
            },
        );
        assert!(report.truncated);
    }

    #[test]
    fn bfs_finds_the_shortest_witness() {
        // The canonical Theorem 18 violation is 3 steps (one CAS per
        // process); BFS must find exactly that.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan);
        let report = explore_bfs(state, ExplorerConfig::default());
        let w = report.violation.expect("violation must exist");
        assert_eq!(w.choices.len(), 3, "canonical witness is 3 steps: {w:?}");
    }

    #[test]
    fn bfs_agrees_with_dfs_on_verification() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let mk = || SimState::new(one_shots(&[10, 20]), Heap::new(1, 0), plan.clone());
        let dfs = explore(mk(), ExplorerConfig::default());
        let bfs = explore_bfs(mk(), ExplorerConfig::default());
        assert!(dfs.verified());
        assert!(bfs.violation.is_none() && !bfs.truncated);
        assert_eq!(dfs.agreed_values, bfs.agreed_values);
    }

    #[test]
    fn bfs_witness_replays() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone());
        let report = explore_bfs(state, ExplorerConfig::default());
        let w = report.violation.unwrap();
        let replay = w.replay(one_shots(&[10, 20, 30]), Heap::new(1, 0), &plan);
        assert!(!check_consensus(&replay.outcomes, None).ok());
    }

    #[test]
    fn bfs_truncation_reported() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20]), Heap::new(1, 0), plan);
        let report = explore_bfs(
            state,
            ExplorerConfig {
                max_states: 2,
                max_depth: 100,
                stop_at_first_violation: true,
                threads: 1,
            },
        );
        assert!(report.truncated);
    }

    #[test]
    fn cycle_detection_flags_potential_nontermination() {
        // A process that CASes ⊥→⊥ forever... does not change state, so
        // build a genuine 2-cycle: alternate writes between two register
        // values.
        #[derive(Clone)]
        struct Flipper {
            phase: u8,
        }
        impl Process for Flipper {
            fn next_op(&self) -> Op {
                Op::Write(crate::heap::RegId(0), (self.phase as u64) % 2)
            }
            fn apply(&mut self, _r: OpResult) -> Status {
                self.phase = (self.phase + 1) % 2;
                Status::Running
            }
            fn status(&self) -> Status {
                Status::Running
            }
            fn input(&self) -> Input {
                Input(0)
            }
            fn snapshot(&self) -> Vec<u64> {
                vec![self.phase as u64]
            }
            fn box_clone(&self) -> Box<dyn Process> {
                Box::new(self.clone())
            }
        }
        let state = SimState::new(
            vec![Box::new(Flipper { phase: 0 })],
            Heap::new(0, 1),
            FaultPlan::none(),
        );
        let report = explore(state, ExplorerConfig::default());
        assert!(report.cycle_found);
        assert!(!report.verified());
    }
}
