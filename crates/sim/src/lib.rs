//! # ff-sim — deterministic shared-memory simulator and model checker
//!
//! The execution substrate of the *Functional Faults* reproduction
//! (Sheffi & Petrank, SPAA 2020). Protocols are written as step machines
//! ([`Process`]) over a [`Heap`] of CAS cells and read/write registers —
//! exactly the paper's model of Section 2, where each atomic step performs
//! at most one shared-object operation.
//!
//! Three execution modes share the same step semantics:
//!
//! * **Driven runs** ([`executor::run`]): a [`Scheduler`] picks the
//!   interleaving and a [`FaultOracle`] decides which in-budget fault
//!   opportunities are taken. Round-robin, seeded-random and scripted
//!   drivers cover benign, stress and replay use.
//! * **Exhaustive exploration** ([`explorer::explore`]): every
//!   interleaving × every allowed fault decision, with exact-key
//!   memoization — the engine behind the mechanical verification of the
//!   upper bounds (Theorems 4–6) and the witness extraction for the lower
//!   bounds (Theorems 18–19).
//! * **Valency analysis** ([`valency`]): reachable decision sets,
//!   multivalent/univalent classification and critical-state search,
//!   mechanizing the vocabulary of the impossibility proofs.
//!
//! Fault injection follows Definition 3's parameters: a [`FaultPlan`]
//! names the (≤ `f`) faulty objects, their [`ff_spec::FaultKind`] and the
//! per-object limit `t`; a [`FaultBudget`] enforces them. A fault decision
//! is only charged when it is *observable* — when the resulting record
//! actually violates the CAS's standard postconditions (Definition 1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cbound;
pub mod combining;
pub mod executor;
pub mod explorer;
pub mod fault_ctl;
pub mod heap;
pub mod ops;
pub mod parallel;
pub mod process;
pub mod scheduler;
pub mod state;
pub mod trace;
pub mod valency;

pub use cbound::{explore_context_bounded, iterative_context_bounding};
pub use combining::{
    check_combining, combining_crash_grid, combining_grid, CombineModelConfig, CombineModelReport,
};
pub use executor::{run, RunConfig, RunReport};
pub use explorer::{explore, explore_bfs, ExploreReport, ExplorerConfig, ViolationCounts, Witness};
pub use fault_ctl::{
    FaultBudget, FaultOracle, FaultPlan, GreedyFault, NeverFault, ProcessBoundFault, RandomFault,
    ScriptedFault, StepDecision,
};
pub use heap::{Heap, RegId};
pub use ops::{FaultDecision, Op, OpResult};
pub use parallel::{default_threads, explore_parallel};
pub use process::{Process, SoloDecider, Status};
pub use scheduler::{RoundRobin, Scheduler, Scripted, SeededRandom, SoloFirst};
pub use state::{Choice, SimState};
pub use trace::{Trace, TraceEvent};
pub use valency::{find_critical_state, CriticalState, Valency, ValencyAnalyzer};
