//! Schedulers: who takes the next step.
//!
//! The paper's model is fully asynchronous — any interleaving of process
//! steps is a legal execution. Schedulers range from fair round-robin
//! (benign), through seeded-random (stress testing), to scripted schedules
//! (replaying explorer witnesses and building the proofs' adversarial
//! executions).

use ff_spec::ProcessId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Picks which runnable process takes the next step.
pub trait Scheduler: Send {
    /// Choose one of `runnable` (non-empty, sorted by id) to step next.
    fn pick(&mut self, runnable: &[ProcessId]) -> ProcessId;
}

/// Fair round-robin over process ids.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, runnable: &[ProcessId]) -> ProcessId {
        // Find the first runnable id ≥ the cursor, wrapping around.
        let chosen = runnable
            .iter()
            .copied()
            .find(|p| p.0 >= self.next)
            .unwrap_or(runnable[0]);
        self.next = chosen.0 + 1;
        chosen
    }
}

/// Uniform random choice, seeded for replayability.
#[derive(Clone, Debug)]
pub struct SeededRandom {
    rng: SmallRng,
}

impl SeededRandom {
    /// A random scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededRandom {
    fn pick(&mut self, runnable: &[ProcessId]) -> ProcessId {
        runnable[self.rng.gen_range(0..runnable.len())]
    }
}

/// Replays a fixed schedule, then falls back to round-robin. If a scripted
/// process is not currently runnable, the script entry is skipped (this
/// keeps witness replay robust when a process decides slightly earlier
/// than the script anticipated).
#[derive(Clone, Debug)]
pub struct Scripted {
    script: VecDeque<ProcessId>,
    fallback: RoundRobin,
}

impl Scripted {
    /// A scheduler replaying `script`.
    pub fn new(script: impl IntoIterator<Item = ProcessId>) -> Self {
        Scripted {
            script: script.into_iter().collect(),
            fallback: RoundRobin::new(),
        }
    }

    /// Entries remaining in the script.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for Scripted {
    fn pick(&mut self, runnable: &[ProcessId]) -> ProcessId {
        while let Some(p) = self.script.pop_front() {
            if runnable.contains(&p) {
                return p;
            }
        }
        self.fallback.pick(runnable)
    }
}

/// Runs one process solo for as long as it is runnable, then falls back to
/// round-robin over the rest. The building block of the proofs' "let `p`
/// run alone until it decides" constructions.
#[derive(Clone, Debug)]
pub struct SoloFirst {
    solo: ProcessId,
    fallback: RoundRobin,
}

impl SoloFirst {
    /// Scheduler running `solo` until it is no longer runnable.
    pub fn new(solo: ProcessId) -> Self {
        SoloFirst {
            solo,
            fallback: RoundRobin::new(),
        }
    }
}

impl Scheduler for SoloFirst {
    fn pick(&mut self, runnable: &[ProcessId]) -> ProcessId {
        if runnable.contains(&self.solo) {
            self.solo
        } else {
            self.fallback.pick(runnable)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<ProcessId> {
        v.iter().copied().map(ProcessId).collect()
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut s = RoundRobin::new();
        let r = ids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6).map(|_| s.pick(&r).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_non_runnable() {
        let mut s = RoundRobin::new();
        assert_eq!(s.pick(&ids(&[0, 1, 2])), ProcessId(0));
        // p1 decided; remaining are p0 and p2. Cursor is at 1 → picks p2.
        assert_eq!(s.pick(&ids(&[0, 2])), ProcessId(2));
        assert_eq!(s.pick(&ids(&[0, 2])), ProcessId(0));
    }

    #[test]
    fn seeded_random_is_replayable_and_in_range() {
        let r = ids(&[0, 1, 2, 3]);
        let mut a = SeededRandom::new(7);
        let mut b = SeededRandom::new(7);
        for _ in 0..100 {
            let (x, y) = (a.pick(&r), b.pick(&r));
            assert_eq!(x, y);
            assert!(r.contains(&x));
        }
    }

    #[test]
    fn scripted_replays_then_falls_back() {
        let mut s = Scripted::new(ids(&[2, 2, 0]));
        let r = ids(&[0, 1, 2]);
        assert_eq!(s.pick(&r), ProcessId(2));
        assert_eq!(s.pick(&r), ProcessId(2));
        assert_eq!(s.pick(&r), ProcessId(0));
        assert_eq!(s.remaining(), 0);
        // Fallback round-robin from here.
        assert_eq!(s.pick(&r), ProcessId(0));
        assert_eq!(s.pick(&r), ProcessId(1));
    }

    #[test]
    fn scripted_skips_non_runnable_entries() {
        let mut s = Scripted::new(ids(&[1, 0]));
        // p1 is not runnable: skip to p0.
        assert_eq!(s.pick(&ids(&[0, 2])), ProcessId(0));
    }

    #[test]
    fn solo_first_prefers_solo_process() {
        let mut s = SoloFirst::new(ProcessId(1));
        assert_eq!(s.pick(&ids(&[0, 1, 2])), ProcessId(1));
        assert_eq!(s.pick(&ids(&[0, 1, 2])), ProcessId(1));
        // Once p1 decided, round-robin over the rest.
        assert_eq!(s.pick(&ids(&[0, 2])), ProcessId(0));
        assert_eq!(s.pick(&ids(&[0, 2])), ProcessId(2));
    }
}
