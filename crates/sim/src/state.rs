//! Whole-execution states for the exhaustive explorer and the valency
//! analyzer.
//!
//! A [`SimState`] bundles everything the future of an execution depends
//! on — heap, process local states, remaining fault budget and blocked
//! flags — and exposes the branching structure: which [`Choice`]s (process
//! to step × fault decision) are available, and the successor state each
//! produces. States have an *exact* [`SimState::key`], so memoization can
//! never collide two genuinely different states.

use crate::executor::{execute_step, StepEffect};
use crate::fault_ctl::{FaultBudget, FaultPlan, StepDecision};
use crate::heap::Heap;
use crate::ops::{FaultDecision, Op};
use crate::process::{Process, Status};
use ff_spec::{Outcome, ProcessId};

/// One branching decision of the explorer: which process steps, with which
/// fault decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Choice {
    /// The process taking the step.
    pub pid: ProcessId,
    /// The decision applied to the step.
    pub decision: StepDecision,
    /// Whether this step was a *fault opportunity* (the oracle would have
    /// been consulted in a driven run). Needed to replay witnesses through
    /// the scripted oracle.
    pub had_opportunity: bool,
}

/// A complete execution state.
pub struct SimState {
    /// The shared memory.
    pub heap: Heap,
    /// The processes' local states.
    pub processes: Vec<Box<dyn Process>>,
    /// Remaining fault budget.
    pub budget: FaultBudget,
    /// Processes blocked by nonresponsive faults.
    pub blocked: Vec<bool>,
    plan: FaultPlan,
}

impl Clone for SimState {
    fn clone(&self) -> Self {
        SimState {
            heap: self.heap.clone(),
            processes: self.processes.clone(),
            budget: self.budget.clone(),
            blocked: self.blocked.clone(),
            plan: self.plan.clone(),
        }
    }
}

impl SimState {
    /// The initial state of an execution.
    pub fn new(processes: Vec<Box<dyn Process>>, heap: Heap, plan: FaultPlan) -> Self {
        let budget = FaultBudget::new(&plan, heap.cas_count());
        let blocked = vec![false; processes.len()];
        SimState {
            heap,
            processes,
            budget,
            blocked,
            plan,
        }
    }

    /// Processes that can still take a step.
    pub fn runnable(&self) -> Vec<ProcessId> {
        (0..self.processes.len())
            .filter(|&i| !self.blocked[i] && self.processes[i].status() == Status::Running)
            .map(ProcessId)
            .collect()
    }

    /// `true` iff no process can take a step (all decided or blocked).
    pub fn is_terminal(&self) -> bool {
        self.runnable().is_empty()
    }

    /// The available branching decisions from this state: for every
    /// runnable process, a correct step, plus — when its next op is a CAS
    /// on an object with remaining budget and the plan's fault would be
    /// observable — the faulty step.
    pub fn choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for pid in self.runnable() {
            let op = self.processes[pid.0].next_op();
            let opportunity = match op {
                Op::Cas { obj, exp, new } if self.budget.can_fault(obj) => {
                    self.plan
                        .opportunity(obj, self.heap.peek_cas(obj), exp, new)
                }
                _ => None,
            };
            let had_opportunity = opportunity.is_some();
            out.push(Choice {
                pid,
                decision: StepDecision::Apply(FaultDecision::Correct),
                had_opportunity,
            });
            if let Some(faulty) = opportunity {
                out.push(Choice {
                    pid,
                    decision: faulty,
                    had_opportunity,
                });
            }
        }
        out
    }

    /// Execute `choice` in place.
    pub fn step(&mut self, choice: Choice) {
        let effect = execute_step(
            &mut self.heap,
            &mut self.budget,
            self.processes[choice.pid.0].as_mut(),
            choice.pid,
            choice.decision,
            None,
            None,
        );
        if effect == StepEffect::Blocked {
            self.blocked[choice.pid.0] = true;
        }
    }

    /// The successor state reached by `choice`.
    pub fn successor(&self, choice: Choice) -> SimState {
        let mut next = self.clone();
        next.step(choice);
        next
    }

    /// Exact memoization key: heap + budget + per-process (status, local
    /// snapshot, blocked flag), with length delimiters so distinct states
    /// can never encode to the same key.
    pub fn key(&self) -> Vec<u64> {
        let mut key = Vec::new();
        let heap = self.heap.snapshot();
        key.push(heap.len() as u64);
        key.extend(heap);
        let budget = self.budget.snapshot();
        key.push(budget.len() as u64);
        key.extend(budget);
        for (i, p) in self.processes.iter().enumerate() {
            let snap = p.snapshot();
            key.push(snap.len() as u64);
            key.extend(snap);
            key.push(p.status().word());
            key.push(self.blocked[i] as u64);
        }
        key
    }

    /// Per-process outcomes (meaningful at terminal states; step counts
    /// are not tracked during exploration and read 0).
    pub fn outcomes(&self) -> Vec<Outcome> {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, p)| Outcome {
                process: ProcessId(i),
                input: p.input(),
                decision: p.status().decision(),
                steps: 0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::SoloDecider;
    use ff_spec::{Bound, Input, ObjectId, BOTTOM};

    fn solo_state(inputs: &[u32], steps: u64) -> SimState {
        let processes: Vec<Box<dyn Process>> = inputs
            .iter()
            .map(|&v| Box::new(SoloDecider::new(Input(v), steps)) as Box<dyn Process>)
            .collect();
        SimState::new(processes, Heap::new(1, 0), FaultPlan::none())
    }

    #[test]
    fn initial_state_all_runnable() {
        let s = solo_state(&[1, 2], 1);
        assert_eq!(s.runnable(), vec![ProcessId(0), ProcessId(1)]);
        assert!(!s.is_terminal());
    }

    #[test]
    fn local_steps_have_no_fault_branch() {
        let s = solo_state(&[1, 2], 1);
        let cs = s.choices();
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| !c.had_opportunity));
    }

    #[test]
    fn stepping_reaches_terminal() {
        let mut s = solo_state(&[1], 1);
        let c = s.choices()[0];
        s.step(c);
        assert!(s.is_terminal());
        let outs = s.outcomes();
        assert_eq!(outs[0].decision, Some(Input(1)));
    }

    #[test]
    fn successor_leaves_original_untouched() {
        let s = solo_state(&[1], 1);
        let next = s.successor(s.choices()[0]);
        assert!(!s.is_terminal());
        assert!(next.is_terminal());
        assert_ne!(s.key(), next.key());
    }

    #[test]
    fn cas_opportunity_creates_fault_branch() {
        // A process CASing into a faulty object where the comparison
        // mismatches gets two branches.
        #[derive(Clone)]
        struct Casser {
            status: Status,
        }
        impl Process for Casser {
            fn next_op(&self) -> Op {
                Op::Cas {
                    obj: ObjectId(0),
                    exp: 999, // will mismatch (cell holds ⊥)
                    new: 5,
                }
            }
            fn apply(&mut self, _r: crate::ops::OpResult) -> Status {
                self.status = Status::Decided(Input(0));
                self.status
            }
            fn status(&self) -> Status {
                self.status
            }
            fn input(&self) -> Input {
                Input(0)
            }
            fn snapshot(&self) -> Vec<u64> {
                vec![matches!(self.status, Status::Decided(_)) as u64]
            }
            fn box_clone(&self) -> Box<dyn Process> {
                Box::new(self.clone())
            }
        }
        let s = SimState::new(
            vec![Box::new(Casser {
                status: Status::Running,
            })],
            Heap::new(1, 0),
            FaultPlan::overriding(1, Bound::Finite(1)),
        );
        let cs = s.choices();
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| c.had_opportunity));
        assert_eq!(cs[0].decision, StepDecision::Apply(FaultDecision::Correct));
        assert_eq!(cs[1].decision, StepDecision::Apply(FaultDecision::Override));

        // Taking the faulty branch writes the value and consumes budget.
        let faulty = s.successor(cs[1]);
        assert_eq!(faulty.heap.peek_cas(ObjectId(0)), 5);
        assert!(!faulty.budget.can_fault(ObjectId(0)));

        // Taking the correct branch leaves ⊥ (mismatch ⇒ no write).
        let correct = s.successor(cs[0]);
        assert_eq!(correct.heap.peek_cas(ObjectId(0)), BOTTOM);
        assert_ne!(faulty.key(), correct.key());
    }

    #[test]
    fn keys_are_equal_for_equal_states() {
        let a = solo_state(&[1, 2], 3);
        let b = solo_state(&[1, 2], 3);
        assert_eq!(a.key(), b.key());
        let c = solo_state(&[1, 3], 3);
        assert_ne!(a.key(), c.key());
    }
}
