//! Execution traces: everything that happened, in order, with enough
//! detail to print a human-readable witness of a consensus violation.

use crate::fault_ctl::StepDecision;
use crate::ops::{FaultDecision, Op};
use crate::process::Status;
use ff_spec::{CasRecord, ProcessId};

/// One step of an execution.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global step index (0-based).
    pub index: u64,
    /// The process that stepped.
    pub pid: ProcessId,
    /// The operation it performed.
    pub op: Op,
    /// The decision applied to the step.
    pub decision: StepDecision,
    /// The CAS footprint, when the op was a CAS that responded.
    pub record: Option<CasRecord>,
    /// Whether the step was an *observable* fault (violated the standard
    /// postconditions).
    pub faulted: bool,
    /// The process's status after the step (`None` when it hung).
    pub status_after: Option<Status>,
}

/// An ordered log of [`TraceEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no steps were taken.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Steps that were observable faults.
    pub fn fault_steps(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.faulted)
    }

    /// Render the trace as one line per step, e.g. for printing the
    /// witness execution of a lower-bound experiment.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(out, "#{:<4} {:>3} ", e.index, e.pid.to_string());
            match &e.op {
                Op::Cas { obj, exp, new } => {
                    let fmt_word = |w: ff_spec::Word| {
                        if w == ff_spec::BOTTOM {
                            "⊥".to_string()
                        } else {
                            format!("{w}")
                        }
                    };
                    let _ = write!(out, "CAS({obj}, {}, {})", fmt_word(*exp), fmt_word(*new));
                    match (&e.decision, &e.record) {
                        (StepDecision::Hang, _) => {
                            let _ = write!(out, " → HANG (nonresponsive fault)");
                        }
                        (_, Some(r)) => {
                            let _ = write!(out, " → old={}", fmt_word(r.returned));
                            if e.faulted {
                                let kind = match e.decision {
                                    StepDecision::Apply(FaultDecision::Override) => "OVERRIDE",
                                    StepDecision::Apply(FaultDecision::Silent) => "SILENT",
                                    StepDecision::Apply(FaultDecision::Invisible { .. }) => {
                                        "INVISIBLE"
                                    }
                                    StepDecision::Apply(FaultDecision::Arbitrary { .. }) => {
                                        "ARBITRARY"
                                    }
                                    _ => "FAULT",
                                };
                                let _ =
                                    write!(out, "  [{kind} FAULT, cell now {}]", fmt_word(r.post));
                            } else if r.successful() {
                                let _ = write!(out, "  [wrote {}]", fmt_word(r.post));
                            }
                        }
                        _ => {}
                    }
                }
                Op::Read(reg) => {
                    let _ = write!(out, "read({reg})");
                }
                Op::Write(reg, val) => {
                    let _ = write!(out, "write({reg}, {val})");
                }
                Op::Local => {
                    let _ = write!(out, "local");
                }
            }
            if let Some(Status::Decided(v)) = e.status_after {
                let _ = write!(out, "  ⇒ DECIDES {v}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_spec::{Input, ObjectId, BOTTOM};

    fn cas_event(index: u64, pid: usize, faulted: bool, decided: Option<u32>) -> TraceEvent {
        TraceEvent {
            index,
            pid: ProcessId(pid),
            op: Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: 5,
            },
            decision: if faulted {
                StepDecision::Apply(FaultDecision::Override)
            } else {
                StepDecision::Apply(FaultDecision::Correct)
            },
            record: Some(CasRecord {
                pre: if faulted { 7 } else { BOTTOM },
                exp: BOTTOM,
                new: 5,
                post: 5,
                returned: if faulted { 7 } else { BOTTOM },
            }),
            faulted,
            status_after: Some(match decided {
                Some(v) => Status::Decided(Input(v)),
                None => Status::Running,
            }),
        }
    }

    #[test]
    fn collects_events_in_order() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(cas_event(0, 0, false, None));
        t.push(cas_event(1, 1, true, Some(5)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.fault_steps().count(), 1);
        assert_eq!(t.events()[1].pid, ProcessId(1));
    }

    #[test]
    fn render_mentions_faults_and_decisions() {
        let mut t = Trace::new();
        t.push(cas_event(0, 0, false, None));
        t.push(cas_event(1, 1, true, Some(5)));
        let text = t.render();
        assert!(text.contains("OVERRIDE FAULT"), "{text}");
        assert!(text.contains("DECIDES 5"), "{text}");
        assert!(text.contains("CAS(O0, ⊥, 5)"), "{text}");
    }

    #[test]
    fn render_hang() {
        let mut t = Trace::new();
        let mut e = cas_event(0, 0, false, None);
        e.decision = StepDecision::Hang;
        e.record = None;
        e.status_after = None;
        t.push(e);
        assert!(t.render().contains("HANG"));
    }
}
