//! Parallel exhaustive exploration: a work-sharing variant of
//! [`explore`](crate::explore) that partitions the state space across
//! worker threads while keeping the report **exact**.
//!
//! # Design
//!
//! Workers run independent depth-first searches over disjoint regions of
//! the state graph, coordinated through two shared structures:
//!
//! * a **sharded claim map** keyed on exact [`SimState::key`]s (the same
//!   lossless keys the sequential explorer memoizes on — no fingerprints,
//!   so pruning can never collide two distinct states). Claiming a state
//!   is an atomic insert; exactly one worker ever expands each reachable
//!   non-terminal state, so `states_expanded`, `terminals`,
//!   `agreed_values` and `violation_counts` are *partition-independent*:
//!   every edge out of every reachable non-terminal state is scanned
//!   exactly once globally, which is precisely what the sequential DFS
//!   does.
//! * a **shared task queue** of unexplored subtree roots. A worker that
//!   discovers a fresh state while the queue is hungry donates it (with
//!   its root-path prefix) instead of descending locally, so idle workers
//!   always find work near the frontier.
//!
//! # Exact cycle detection
//!
//! Each worker keeps the DFS `on_path` set for its local stack, so a back
//! edge within one worker's region is caught exactly as in the sequential
//! explorer. A cycle that *crosses* regions cannot be seen locally, but it
//! also cannot hide: around any cycle every edge `u → v` scanned while
//! `v` was already **finished** strictly decreases finish time, and an
//! edge into a state the scanner itself put on its path is a detected
//! back edge — so an undetected cycle must contain an edge whose target
//! was claimed but *unfinished* (in progress on another worker, or parked
//! in the queue) at scan time. Workers record every such edge target as
//! *suspended*. After the main phase, a sequential post-pass runs DFS from
//! the suspended targets with exact back-edge detection, pruning at
//! states that finished **clean** — a clean state's entire reachable
//! region finished clean (dirtiness is inherited from every edge into
//! unfinished or dirty territory), and finish times strictly decrease
//! along all its out-edges, so no cycle passes through it. The post-pass
//! therefore only walks the contaminated neighborhood of cross-worker
//! boundaries, which stays small when donation is rare.
//!
//! # Determinism
//!
//! For untruncated full scans (`stop_at_first_violation: false`) every
//! aggregate field of the merged report equals the sequential explorer's,
//! regardless of thread count or scheduling. The witness is made
//! deterministic by re-deriving it with a sequential first-violation
//! search (cheap: it stops at the first hit), so it is *identical* to the
//! witness [`explore`](crate::explore) returns. Two fields are inherently
//! schedule-dependent and documented as such: `max_depth_seen` reports
//! the deepest path *this run* happened to walk (claim order decides the
//! path by which a shared state is first reached), and in
//! early-stopping/truncated runs the partial counts depend on where the
//! race stopped — exactly as the sequential explorer's partial report
//! depends on its own traversal order.

use crate::explorer::{explore, ExploreReport, ExplorerConfig, Witness};
use crate::state::{Choice, SimState};
use ff_spec::check_consensus;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Resolve a worker count for parallel exploration: the
/// `FF_EXPLORER_THREADS` environment variable when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("FF_EXPLORER_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Claim-map entry lifecycle: claimed → finished (clean or dirty).
#[derive(Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Claimed; its subtree scan has not completed.
    InProgress,
    /// Scan complete; every out-edge led into certifiably finished-clean
    /// territory (no cycle can pass through this state).
    DoneClean,
    /// Scan complete, but some edge touched unfinished or dirty territory
    /// (donated children, in-progress targets, dirty successors).
    DoneDirty,
}

/// Visited/claim map sharded to keep lock contention off the hot path.
struct ClaimMap {
    shards: Vec<Mutex<HashMap<Vec<u64>, EntryState>>>,
    mask: usize,
}

/// What a claim attempt found.
enum Claimed {
    /// We inserted the key: the caller now owns this state's expansion.
    Fresh,
    Seen(EntryState),
}

impl ClaimMap {
    fn new(threads: usize) -> Self {
        // Power-of-two shard count, comfortably above the worker count.
        let n = (threads * 16).next_power_of_two().max(64);
        ClaimMap {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, key: &[u64]) -> &Mutex<HashMap<Vec<u64>, EntryState>> {
        // FNV-1a over the words; independent of HashMap's internal hasher.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in key {
            h ^= w;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[(h as usize) & self.mask]
    }

    fn claim(&self, key: &[u64]) -> Claimed {
        let mut shard = lock(self.shard(key));
        match shard.get(key) {
            Some(&e) => Claimed::Seen(e),
            None => {
                shard.insert(key.to_vec(), EntryState::InProgress);
                Claimed::Fresh
            }
        }
    }

    fn finish(&self, key: &[u64], dirty: bool) {
        let mut shard = lock(self.shard(key));
        shard.insert(
            key.to_vec(),
            if dirty {
                EntryState::DoneDirty
            } else {
                EntryState::DoneClean
            },
        );
    }

    fn is_done_clean(&self, key: &[u64]) -> bool {
        matches!(lock(self.shard(key)).get(key), Some(EntryState::DoneClean))
    }
}

/// An unexplored subtree root: an already-claimed state plus the choice
/// path that first reached it (witness prefixes and depth accounting).
struct Task {
    state: SimState,
    key: Vec<u64>,
    prefix: Vec<Choice>,
}

/// Shared work queue with idle-count termination detection.
struct WorkQueue {
    inner: Mutex<QueueInner>,
    available: Condvar,
    threads: usize,
    /// Approximate queue length + idle count, readable without the lock:
    /// `is_hungry` runs once per discovered state, so it must stay off
    /// the mutex.
    approx_len: AtomicU64,
    approx_idle: AtomicU64,
}

struct QueueInner {
    tasks: VecDeque<Task>,
    idle: usize,
    shutdown: bool,
}

impl WorkQueue {
    fn new(threads: usize) -> Self {
        WorkQueue {
            inner: Mutex::new(QueueInner {
                tasks: VecDeque::new(),
                idle: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            threads,
            approx_len: AtomicU64::new(0),
            approx_idle: AtomicU64::new(0),
        }
    }

    fn push(&self, task: Task) {
        lock(&self.inner).tasks.push_back(task);
        self.approx_len.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
    }

    /// `true` when parked work is scarce relative to the workers that
    /// could be starved for it. Racy by design — only a donation
    /// heuristic, never a correctness gate.
    fn is_hungry(&self) -> bool {
        self.approx_len.load(Ordering::Relaxed)
            < self.threads as u64 + self.approx_idle.load(Ordering::Relaxed)
    }

    /// Blocks until a task is available or every worker is idle with an
    /// empty queue (global completion). `None` means "done".
    fn pop(&self) -> Option<Task> {
        let mut inner = lock(&self.inner);
        loop {
            if inner.shutdown {
                return None;
            }
            if let Some(t) = inner.tasks.pop_front() {
                self.approx_len.fetch_sub(1, Ordering::Relaxed);
                return Some(t);
            }
            inner.idle += 1;
            self.approx_idle.fetch_add(1, Ordering::Relaxed);
            if inner.idle == self.threads {
                inner.shutdown = true;
                self.available.notify_all();
                return None;
            }
            inner = match self.available.wait(inner) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            inner.idle -= 1;
            self.approx_idle.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Wake everyone for an early stop (first violation / truncation).
    fn cancel(&self) {
        lock(&self.inner).shutdown = true;
        self.available.notify_all();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Flags every worker polls.
struct Shared {
    claims: ClaimMap,
    queue: WorkQueue,
    states: AtomicU64,
    stop: AtomicBool,
    truncated: AtomicBool,
    cycle_found: AtomicBool,
    config: ExplorerConfig,
}

/// One worker's private accumulation, merged after the join.
#[derive(Default)]
struct WorkerReport {
    report: ExploreReport,
    /// First violating witness this worker found (racy identity; replaced
    /// by a deterministic re-search in full-scan mode).
    witness: Option<Witness>,
    /// Targets of edges into unfinished territory: cycle-certification
    /// roots for the post-pass, deduplicated by key.
    suspended: Vec<(Vec<u64>, SimState)>,
}

struct WorkerFrame {
    state: SimState,
    key: Vec<u64>,
    choices: Vec<Choice>,
    next: usize,
    leading: Option<Choice>,
    dirty: bool,
}

/// Exhaustively explore all executions from `initial` on
/// `config.threads` worker threads.
///
/// With `threads <= 1` this is exactly [`explore`](crate::explore). With
/// more threads, untruncated full scans produce a report identical to the
/// sequential one (including the witness; see the module docs for the two
/// schedule-dependent caveats: `max_depth_seen`, and partial counts in
/// early-stopped runs).
pub fn explore_parallel(initial: SimState, config: ExplorerConfig) -> ExploreReport {
    if config.threads <= 1 {
        return explore(initial, config);
    }
    if initial.is_terminal() {
        return explore(initial, config);
    }

    let shared = Shared {
        claims: ClaimMap::new(config.threads),
        queue: WorkQueue::new(config.threads),
        states: AtomicU64::new(1),
        stop: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        cycle_found: AtomicBool::new(false),
        config,
    };

    let root_key = initial.key();
    // Claim the root and seed the queue. In full-scan mode a witness is
    // re-derived sequentially, which needs the initial state back — keep a
    // clone only when that can happen.
    let reseed = initial.clone();
    match shared.claims.claim(&root_key) {
        Claimed::Fresh => {}
        Claimed::Seen(_) => unreachable!("claim map starts empty"),
    }
    shared.queue.push(Task {
        state: initial,
        key: root_key,
        prefix: Vec::new(),
    });

    let mut worker_reports: Vec<WorkerReport> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|_| scope.spawn(|| worker(&shared)))
            .collect();
        for h in handles {
            match h.join() {
                Ok(r) => worker_reports.push(r),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    let mut report = ExploreReport {
        states_expanded: shared
            .states
            .load(Ordering::SeqCst)
            .min(shared.config.max_states),
        truncated: shared.truncated.load(Ordering::SeqCst),
        cycle_found: shared.cycle_found.load(Ordering::SeqCst),
        ..ExploreReport::default()
    };
    let mut witnesses: Vec<Witness> = Vec::new();
    let mut suspended: Vec<(Vec<u64>, SimState)> = Vec::new();
    let mut suspended_keys: HashSet<Vec<u64>> = HashSet::new();
    for w in worker_reports {
        report.terminals += w.report.terminals;
        report.max_depth_seen = report.max_depth_seen.max(w.report.max_depth_seen);
        report.agreed_values.extend(w.report.agreed_values);
        report.violation_counts.merge(&w.report.violation_counts);
        witnesses.extend(w.witness);
        for (key, state) in w.suspended {
            if suspended_keys.insert(key.clone()) {
                suspended.push((key, state));
            }
        }
    }

    // Witness. Full-scan mode: re-derive deterministically with a
    // sequential first-violation search — it visits states in the same
    // order as `explore`, so the witness is identical to the sequential
    // full scan's and stable across runs and thread counts. Early-stop
    // mode: the search raced, so return the lexicographically smallest
    // candidate found before the stop.
    if !witnesses.is_empty() {
        report.violation = if shared.config.stop_at_first_violation {
            witnesses.into_iter().min_by_key(witness_rank)
        } else {
            let refind = explore(
                reseed,
                ExplorerConfig {
                    stop_at_first_violation: true,
                    ..shared.config
                },
            );
            debug_assert!(refind.violation.is_some());
            // The re-search cannot miss (a violating terminal exists), but
            // fall back to a raced candidate rather than dropping the
            // violation if it ever did.
            refind
                .violation
                .or_else(|| witnesses.into_iter().min_by_key(witness_rank))
        };
    }

    // Cycle certification post-pass (see module docs). Only meaningful
    // when the exploration actually completed and no cycle is known yet.
    if !report.truncated
        && !report.cycle_found
        && !shared.stop.load(Ordering::SeqCst)
        && !suspended.is_empty()
        && cycle_reachable_from(&suspended, &shared.claims)
    {
        report.cycle_found = true;
    }

    report
}

/// Total order on witnesses for deterministic tie-breaking: compare the
/// choice sequences lexicographically (shorter prefixes first).
fn witness_rank(w: &Witness) -> Vec<(u32, u8, u8, u64)> {
    w.choices.iter().map(choice_rank).collect()
}

fn choice_rank(c: &Choice) -> (u32, u8, u8, u64) {
    use crate::fault_ctl::StepDecision;
    use crate::ops::FaultDecision;
    let (kind, payload) = match c.decision {
        StepDecision::Apply(FaultDecision::Correct) => (0u8, 0u64),
        StepDecision::Apply(FaultDecision::Override) => (1, 0),
        StepDecision::Apply(FaultDecision::Silent) => (2, 0),
        StepDecision::Apply(FaultDecision::Invisible { returned }) => (3, returned),
        StepDecision::Apply(FaultDecision::Arbitrary { written }) => (4, written),
        StepDecision::Hang => (5, 0),
    };
    (c.pid.0 as u32, c.had_opportunity as u8, kind, payload)
}

fn worker(shared: &Shared) -> WorkerReport {
    let mut out = WorkerReport::default();
    let mut suspended_keys: HashSet<Vec<u64>> = HashSet::new();
    while let Some(task) = shared.queue.pop() {
        run_task(shared, task, &mut out, &mut suspended_keys);
        if shared.stop.load(Ordering::Relaxed) {
            shared.queue.cancel();
            break;
        }
    }
    out
}

/// Depth-first exploration of one claimed subtree root, mirroring the
/// sequential explorer's per-edge accounting exactly.
fn run_task(
    shared: &Shared,
    task: Task,
    out: &mut WorkerReport,
    suspended_keys: &mut HashSet<Vec<u64>>,
) {
    let config = &shared.config;
    let prefix_len = task.prefix.len();
    let mut on_path: HashSet<Vec<u64>> = HashSet::new();
    on_path.insert(task.key.clone());
    let mut stack = vec![WorkerFrame {
        choices: task.state.choices(),
        state: task.state,
        key: task.key,
        next: 0,
        leading: None,
        dirty: false,
    }];

    while !stack.is_empty() {
        let choice = {
            let frame = stack.last_mut().expect("nonempty");
            if frame.next >= frame.choices.len() {
                let finished = stack.pop().expect("nonempty");
                on_path.remove(&finished.key);
                shared.claims.finish(&finished.key, finished.dirty);
                if let Some(parent) = stack.last_mut() {
                    parent.dirty |= finished.dirty;
                }
                continue;
            }
            let c = frame.choices[frame.next];
            frame.next += 1;
            c
        };
        if shared.stop.load(Ordering::Relaxed) {
            // Abandoned frames stay InProgress; the post-pass is skipped
            // in stopped runs, so nothing reads them again.
            return;
        }

        let succ = stack.last().expect("nonempty").state.successor(choice);
        let depth = prefix_len + stack.len();
        out.report.max_depth_seen = out.report.max_depth_seen.max(depth);

        if succ.is_terminal() {
            out.report.terminals += 1;
            let outcomes = succ.outcomes();
            let verdict = check_consensus(&outcomes, None);
            if let Some(agreed) = verdict.agreed {
                out.report.agreed_values.insert(agreed.0);
            }
            if !verdict.ok() {
                out.report.violation_counts.absorb(&verdict.violations);
                if out.witness.is_none() {
                    let mut choices = task.prefix.clone();
                    choices.extend(path_choices(&stack));
                    choices.push(choice);
                    out.witness = Some(Witness {
                        choices,
                        outcomes,
                        violations: verdict.violations,
                    });
                }
                if config.stop_at_first_violation {
                    shared.stop.store(true, Ordering::SeqCst);
                    shared.queue.cancel();
                    return;
                }
            }
            continue;
        }

        let key = succ.key();
        if on_path.contains(&key) {
            // Exact back edge within this worker's path: a certain cycle.
            shared.cycle_found.store(true, Ordering::SeqCst);
            continue;
        }
        match shared.claims.claim(&key) {
            Claimed::Seen(EntryState::DoneClean) => continue,
            Claimed::Seen(EntryState::DoneDirty) => {
                stack.last_mut().expect("nonempty").dirty = true;
                continue;
            }
            Claimed::Seen(EntryState::InProgress) => {
                // Cross-worker boundary: the target might complete a cycle
                // back into territory that is still open. Remember it for
                // the certification post-pass.
                stack.last_mut().expect("nonempty").dirty = true;
                if suspended_keys.insert(key.clone()) {
                    out.suspended.push((key, succ));
                }
                continue;
            }
            Claimed::Fresh => {}
        }
        let n = shared.states.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= config.max_states {
            shared.truncated.store(true, Ordering::SeqCst);
            shared.stop.store(true, Ordering::SeqCst);
            shared.queue.cancel();
            return;
        }
        if depth >= config.max_depth {
            // Claimed but never expanded: not certifiable, and the run is
            // truncated anyway (which disables the post-pass).
            shared.truncated.store(true, Ordering::SeqCst);
            shared.claims.finish(&key, true);
            stack.last_mut().expect("nonempty").dirty = true;
            continue;
        }
        if shared.queue.is_hungry() {
            // Donate the fresh subtree instead of descending: its
            // exploration leaves this worker's certified region.
            stack.last_mut().expect("nonempty").dirty = true;
            if suspended_keys.insert(key.clone()) {
                out.suspended.push((key.clone(), succ.clone()));
            }
            let mut prefix = task.prefix.clone();
            prefix.extend(path_choices(&stack));
            prefix.push(choice);
            shared.queue.push(Task {
                state: succ,
                key,
                prefix,
            });
            continue;
        }
        on_path.insert(key.clone());
        stack.push(WorkerFrame {
            choices: succ.choices(),
            state: succ,
            key,
            next: 0,
            leading: Some(choice),
            dirty: false,
        });
    }

    /// Leading choices of the live stack (root frame's `leading` is
    /// `None`: the task prefix covers everything above it).
    fn path_choices(stack: &[WorkerFrame]) -> Vec<Choice> {
        stack.iter().filter_map(|f| f.leading).collect()
    }
}

/// Post-pass: exact sequential cycle search from the suspended targets,
/// pruning at states certified clean by the main phase.
fn cycle_reachable_from(suspended: &[(Vec<u64>, SimState)], claims: &ClaimMap) -> bool {
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut on_path: HashSet<Vec<u64>> = HashSet::new();

    struct PpFrame {
        state: SimState,
        key: Vec<u64>,
        choices: Vec<Choice>,
        next: usize,
    }

    for (root_key, root_state) in suspended {
        if claims.is_done_clean(root_key) || !visited.insert(root_key.clone()) {
            continue;
        }
        on_path.insert(root_key.clone());
        let mut stack = vec![PpFrame {
            choices: root_state.choices(),
            state: root_state.clone(),
            key: root_key.clone(),
            next: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            if frame.next >= frame.choices.len() {
                on_path.remove(&frame.key);
                stack.pop();
                continue;
            }
            let choice = frame.choices[frame.next];
            frame.next += 1;
            let succ = frame.state.successor(choice);
            if succ.is_terminal() {
                continue;
            }
            let key = succ.key();
            if on_path.contains(&key) {
                return true;
            }
            if claims.is_done_clean(&key) || !visited.insert(key.clone()) {
                continue;
            }
            on_path.insert(key.clone());
            stack.push(PpFrame {
                choices: succ.choices(),
                state: succ,
                key,
                next: 0,
            });
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_ctl::FaultPlan;
    use crate::heap::Heap;
    use crate::ops::{Op, OpResult};
    use crate::process::{Process, SoloDecider, Status};
    use ff_spec::{Bound, Input, ObjectId, BOTTOM};

    /// The naive Herlihy one-shot (same as the sequential explorer's test
    /// process): CAS(O0, ⊥, input), adopt the winner.
    #[derive(Clone)]
    struct OneShot {
        input: Input,
        status: Status,
    }
    impl OneShot {
        fn new(v: u32) -> Self {
            OneShot {
                input: Input(v),
                status: Status::Running,
            }
        }
    }
    impl Process for OneShot {
        fn next_op(&self) -> Op {
            Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: self.input.to_word(),
            }
        }
        fn apply(&mut self, result: OpResult) -> Status {
            let old = result.cas_old();
            let decided = Input::from_word(old).unwrap_or(self.input);
            self.status = Status::Decided(decided);
            self.status
        }
        fn status(&self) -> Status {
            self.status
        }
        fn input(&self) -> Input {
            self.input
        }
        fn snapshot(&self) -> Vec<u64> {
            vec![
                self.input.0 as u64,
                match self.status {
                    Status::Running => 0,
                    Status::Decided(v) => 1 + v.0 as u64,
                },
            ]
        }
        fn box_clone(&self) -> Box<dyn Process> {
            Box::new(self.clone())
        }
    }

    fn one_shots(inputs: &[u32]) -> Vec<Box<dyn Process>> {
        inputs
            .iter()
            .map(|&v| Box::new(OneShot::new(v)) as Box<dyn Process>)
            .collect()
    }

    fn full_cfg(threads: usize) -> ExplorerConfig {
        ExplorerConfig {
            stop_at_first_violation: false,
            threads,
            ..ExplorerConfig::default()
        }
    }

    #[test]
    fn one_thread_delegates_to_sequential() {
        let mk = || SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), FaultPlan::none());
        let seq = explore(mk(), full_cfg(1));
        let par = explore_parallel(mk(), full_cfg(1));
        assert_eq!(seq.states_expanded, par.states_expanded);
        assert_eq!(seq.terminals, par.terminals);
    }

    #[test]
    fn parallel_matches_sequential_on_verifying_config() {
        let mk = || SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), FaultPlan::none());
        let seq = explore(mk(), full_cfg(1));
        for threads in [2, 4, 8] {
            let par = explore_parallel(mk(), full_cfg(threads));
            assert!(par.verified(), "threads={threads}: {par:?}");
            assert_eq!(
                par.states_expanded, seq.states_expanded,
                "threads={threads}"
            );
            assert_eq!(par.terminals, seq.terminals, "threads={threads}");
            assert_eq!(par.agreed_values, seq.agreed_values, "threads={threads}");
            assert_eq!(
                par.violation_counts, seq.violation_counts,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_on_violating_full_scan() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let mk = || SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone());
        let seq = explore(mk(), full_cfg(1));
        for threads in [2, 4] {
            let par = explore_parallel(mk(), full_cfg(threads));
            assert_eq!(par.states_expanded, seq.states_expanded);
            assert_eq!(par.terminals, seq.terminals);
            assert_eq!(par.agreed_values, seq.agreed_values);
            assert_eq!(par.violation_counts, seq.violation_counts);
            // Full-scan witnesses are re-derived sequentially: identical.
            let (sw, pw) = (
                seq.violation.as_ref().unwrap(),
                par.violation.as_ref().unwrap(),
            );
            assert_eq!(sw.choices, pw.choices, "threads={threads}");
            assert_eq!(sw.outcomes, pw.outcomes, "threads={threads}");
        }
    }

    #[test]
    fn parallel_stop_mode_finds_a_real_witness() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone());
        let cfg = ExplorerConfig {
            threads: 4,
            ..ExplorerConfig::default()
        };
        let report = explore_parallel(state, cfg);
        let w = report.violation.expect("violation exists");
        let replay = w.replay(one_shots(&[10, 20, 30]), Heap::new(1, 0), &plan);
        assert!(!check_consensus(&replay.outcomes, None).ok());
    }

    #[test]
    fn parallel_detects_cross_worker_cycles() {
        // The Flipper graph (a 2-cycle) from the sequential explorer's
        // cycle test: every thread count must flag it.
        #[derive(Clone)]
        struct Flipper {
            phase: u8,
        }
        impl Process for Flipper {
            fn next_op(&self) -> Op {
                Op::Write(crate::heap::RegId(0), (self.phase as u64) % 2)
            }
            fn apply(&mut self, _r: OpResult) -> Status {
                self.phase = (self.phase + 1) % 2;
                Status::Running
            }
            fn status(&self) -> Status {
                Status::Running
            }
            fn input(&self) -> Input {
                Input(0)
            }
            fn snapshot(&self) -> Vec<u64> {
                vec![self.phase as u64]
            }
            fn box_clone(&self) -> Box<dyn Process> {
                Box::new(self.clone())
            }
        }
        for threads in [1, 2, 4] {
            let state = SimState::new(
                vec![
                    Box::new(Flipper { phase: 0 }),
                    Box::new(Flipper { phase: 1 }),
                ],
                Heap::new(0, 1),
                FaultPlan::none(),
            );
            let report = explore_parallel(
                state,
                ExplorerConfig {
                    threads,
                    ..ExplorerConfig::default()
                },
            );
            assert!(report.cycle_found, "threads={threads}: {report:?}");
            assert!(!report.verified());
        }
    }

    #[test]
    fn parallel_reports_truncation() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20]), Heap::new(1, 0), plan);
        let report = explore_parallel(
            state,
            ExplorerConfig {
                max_states: 2,
                max_depth: 100,
                stop_at_first_violation: true,
                threads: 4,
            },
        );
        assert!(report.truncated);
        assert!(!report.verified());
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let mk = || SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone());
        let baseline = explore_parallel(mk(), full_cfg(2));
        for threads in [2, 3, 4] {
            for _ in 0..3 {
                let r = explore_parallel(mk(), full_cfg(threads));
                assert_eq!(r.states_expanded, baseline.states_expanded);
                assert_eq!(r.terminals, baseline.terminals);
                assert_eq!(r.agreed_values, baseline.agreed_values);
                assert_eq!(r.violation_counts, baseline.violation_counts);
                assert_eq!(
                    r.violation.as_ref().unwrap().choices,
                    baseline.violation.as_ref().unwrap().choices
                );
            }
        }
    }

    #[test]
    fn solo_deciders_terminal_counts_match() {
        let mk = || {
            SimState::new(
                vec![
                    Box::new(SoloDecider::new(Input(1), 3)) as Box<dyn Process>,
                    Box::new(SoloDecider::new(Input(1), 3)) as Box<dyn Process>,
                ],
                Heap::new(1, 0),
                FaultPlan::none(),
            )
        };
        let seq = explore(mk(), full_cfg(1));
        let par = explore_parallel(mk(), full_cfg(4));
        assert_eq!(seq.terminals, par.terminals);
        assert_eq!(seq.states_expanded, par.states_expanded);
        assert!(par.verified());
    }
}
