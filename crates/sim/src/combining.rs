//! Exhaustive small-config model of ff-store's flat-combining protocol
//! and wait-free read fast path.
//!
//! The protocol under check is the one `ff-store`'s `combine` module
//! implements: clients publish pending ops into per-client announce
//! slots, any client whose op is still pending may run a combine pass
//! (claim every pending slot by CAS, append the claimed batch to the
//! shard log as *one* decided entry, advance the shared replica,
//! distribute results), and a read may complete wait-free from the
//! shared replica when the replica's applied index covers the tail the
//! reader observed. The model is deliberately small — a handful of
//! clients, a register-shaped log — but the *interleavings* are
//! explored exhaustively, including the adversarial ones the live
//! system cannot be steered into on demand: a combiner parked between
//! append and apply, racing combiners splitting a pending set, a
//! takeover mid-claim. Combiner concurrency is bounded at two, which is
//! what the implementation admits: the advisory busy flag lets one pass
//! run and the forced-takeover path can add exactly one more.
//!
//! Tolerated cell faults are abstracted as **bounded append stutters**:
//! a combine pass's append step may fail and be retried up to the
//! budget ([`ff_spec::Bound::Finite`]), with the adversary choosing
//! when. That is what the robust log constructions reduce tolerated
//! fault kinds to — extra propose rounds and adversarial ordering,
//! never a wrong decision (the reduction itself is verified by the
//! explorer's consensus models; broken *un*tolerated cells are covered
//! by ff-store's divergence tests, not here).
//!
//! Two properties are checked on every reachable state:
//!
//! 1. **Freshness** — no fast-path read returns a state staler than the
//!    shard's decided tail at the moment the read began.
//! 2. **Hand-off integrity** — no pending op is ever lost (every run
//!    quiesces with every published op decided exactly once) or
//!    duplicated (no op appears twice in the log), no matter which
//!    combiner drains it or how many takeovers interleave.
//!
//! Setting [`CombineModelConfig::guarded`] to `false` removes the
//! freshness guard (reads answer from the replica unconditionally),
//! which must make the checker report stale reads — the standard
//! broken-variant sanity check that the model can see violations at
//! all.

use ff_spec::Bound;
use std::collections::HashSet;

/// One small configuration of the combining model.
#[derive(Clone, Copy, Debug)]
pub struct CombineModelConfig {
    /// Number of clients (each owns one announce slot).
    pub clients: usize,
    /// Rounds per client; each round is one write followed by one read.
    pub rounds: usize,
    /// Tolerated append stutters for the whole run (the cell-fault
    /// abstraction). Must be [`Bound::Finite`] — unbounded stutter
    /// admits infinite runs, which is exactly the nontermination the
    /// paper's tolerated-fault budgets exclude.
    pub stutter_budget: Bound,
    /// Keep the read fast path's freshness guard. `false` checks the
    /// deliberately broken variant (reads answer unconditionally) and
    /// must produce stale-read violations.
    pub guarded: bool,
}

/// What exhaustive exploration of one configuration found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombineModelReport {
    /// Distinct states visited.
    pub states: usize,
    /// Distinct quiescent (terminal) states.
    pub terminals: usize,
    /// Fast-path reads that returned a state staler than the decided
    /// tail observed at read start (property 1 violations).
    pub stale_reads: usize,
    /// Terminal states where a published op never reached the log, or
    /// where a run wedged with work still pending (property 2: lost).
    pub lost_ops: usize,
    /// States where an op appears more than once in the log
    /// (property 2: duplicated).
    pub duplicated_ops: usize,
}

impl CombineModelReport {
    /// No property was violated anywhere in the state space.
    pub fn clean(&self) -> bool {
        self.stale_reads == 0 && self.lost_ops == 0 && self.duplicated_ops == 0
    }
}

/// Announce-slot lifecycle, exactly the implementation's.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Slot {
    Empty,
    /// Published, up for grabs by any combiner.
    Pending(u8),
    /// Taken by some combiner's claim CAS.
    Claimed(u8),
    /// Executed; payload is the log length right after the batch
    /// carrying this op was appended (its linearization prefix).
    Done(u8),
}

/// Per-client control state.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Between operations.
    Ready,
    /// A read sampled the decided tail (`observed`) and is about to
    /// check the replica — the adversarial gap is between that sample
    /// and the replica check.
    FastCheck { observed: u8 },
    /// Op published; waiting for a combiner to deliver (the decided
    /// tail at publish lives in `State::dstart` so it survives a
    /// combine pass).
    Waiting,
    /// Running a combine pass: claim CAS over slots `0..idx` done so
    /// far, `claimed` holds the indices won.
    Claiming { idx: u8, claimed: Vec<u8> },
    /// Claim phase finished; the batched append is next (this is where
    /// stutters — and parked-combiner schedules — bite).
    Execute { claimed: Vec<u8> },
    /// Batch appended at log position `pos`; the replica apply (and
    /// result distribution) is next. A reader scheduled here sees the
    /// tail grown but the replica lagging — the window the freshness
    /// guard exists for.
    Apply { claimed: Vec<u8>, pos: u8 },
}

/// One explorable state of the whole system.
#[derive(Clone)]
struct State {
    phase: Vec<Phase>,
    /// Next program index per client.
    pc: Vec<u8>,
    slots: Vec<Slot>,
    /// Decided log: each entry is one combine pass's batch.
    log: Vec<Vec<u8>>,
    /// Batches the shared replica has applied.
    applied: u8,
    /// Per client: the decided tail when its in-flight op began (for
    /// the freshness cross-check on delivered reads).
    dstart: Vec<u8>,
    /// Remaining tolerated append stutters.
    budget: u8,
}

/// Client `c`'s `k`-th operation id. Even ids are writes, odd are
/// reads (each round is write-then-read), and ids are globally unique.
fn op_id(c: usize, k: u8) -> u8 {
    (c as u8) << 4 | k
}

fn is_write(pc: u8) -> bool {
    pc.is_multiple_of(2)
}

fn claim_mask(claimed: &[u8]) -> u128 {
    claimed.iter().fold(0u128, |m, &sl| m | 1 << sl)
}

/// Compact memoization key. The Vec-shaped [`State`] packs exactly into
/// 132 bits: 24 per client (phase tag + two 4-bit payloads + pc + the
/// freshness mark + slot state), 12 of globals, and 4 bits of decided
/// position per op (slot op payloads are derivable — slot `i` always
/// carries client `i`'s current op). Memoizing on this instead of the
/// heap-heavy state cuts the seen-set cost by more than an order of
/// magnitude, which is what makes the 3-client grid configs explorable.
fn key(st: &State, prog_len: u8) -> (u128, u64) {
    let mut hi: u128 = 0;
    for (i, ph) in st.phase.iter().enumerate() {
        let (tag, f1, f2): (u128, u128, u128) = match ph {
            Phase::Ready => (0, 0, 0),
            Phase::FastCheck { observed } => (1, *observed as u128, 0),
            Phase::Waiting => (2, 0, 0),
            Phase::Claiming { idx, claimed } => (3, *idx as u128, claim_mask(claimed)),
            Phase::Execute { claimed } => (4, claim_mask(claimed), 0),
            Phase::Apply { claimed, pos } => (5, claim_mask(claimed), *pos as u128),
        };
        let (stag, spos): (u128, u128) = match st.slots[i] {
            Slot::Empty => (0, 0),
            Slot::Pending(_) => (1, 0),
            Slot::Claimed(_) => (2, 0),
            Slot::Done(pos) => (3, pos as u128),
        };
        debug_assert!(f1 < 16 && f2 < 16 && st.pc[i] < 8 && st.dstart[i] < 16 && spos < 16);
        let cell = tag
            | f1 << 3
            | f2 << 7
            | (st.pc[i] as u128) << 11
            | (st.dstart[i] as u128) << 14
            | stag << 18
            | spos << 20;
        hi |= cell << (24 * i);
    }
    debug_assert!(st.applied < 16 && st.budget < 16 && st.log.len() < 16);
    hi |= ((st.applied as u128) << 96)
        | ((st.budget as u128) << 100)
        | ((st.log.len() as u128) << 104);
    let mut lo: u64 = 0;
    for (b, batch) in st.log.iter().enumerate() {
        for &op in batch {
            let c = (op >> 4) as u64;
            let k = (op & 0xf) as u64;
            lo |= (b as u64 + 1) << (4 * (c * prog_len as u64 + k));
        }
    }
    (hi, lo)
}

fn explore(cfg: &CombineModelConfig) -> CombineModelReport {
    let n = cfg.clients;
    let prog_len = (cfg.rounds * 2) as u8;
    let budget = match cfg.stutter_budget {
        Bound::Finite(t) => u8::try_from(t).expect("stutter budget fits in u8"),
        _ => panic!("the combining model needs a finite stutter budget"),
    };
    assert!((1..=4).contains(&n), "small configs only (1..=4 clients)");

    let init = State {
        phase: vec![Phase::Ready; n],
        pc: vec![0; n],
        slots: vec![Slot::Empty; n],
        log: Vec::new(),
        applied: 0,
        dstart: vec![0; n],
        budget,
    };

    let mut report = CombineModelReport::default();
    let mut seen: HashSet<(u128, u64)> = HashSet::new();
    let mut stack = vec![init];
    while let Some(st) = stack.pop() {
        if !seen.insert(key(&st, prog_len)) {
            continue;
        }
        report.states += 1;
        let flat: Vec<u8> = st.log.iter().flatten().copied().collect();
        for &op in &flat {
            if flat.iter().filter(|&&o| o == op).count() > 1 {
                report.duplicated_ops += 1;
                break;
            }
        }
        let succs = successors(&st, cfg, prog_len);
        if succs.is_empty() {
            report.terminals += 1;
            // Quiescence: every client finished and every write decided
            // exactly once (duplicates were counted above); a wedged
            // run or a missing write is a lost op.
            let all_done =
                (0..n).all(|i| st.pc[i] == prog_len && matches!(st.phase[i], Phase::Ready));
            let writes_present = (0..n).all(|c| {
                (0..prog_len)
                    .filter(|&k| is_write(k))
                    .all(|k| flat.contains(&op_id(c, k)))
            });
            if !all_done || !writes_present {
                report.lost_ops += 1;
            }
        } else {
            for (succ, stale) in succs {
                if stale {
                    report.stale_reads += 1;
                }
                stack.push(succ);
            }
        }
    }
    report
}

/// All enabled transitions from `st`; the `bool` marks a completed read
/// that violated freshness (returned a prefix older than the decided
/// tail at read start).
fn successors(st: &State, cfg: &CombineModelConfig, prog_len: u8) -> Vec<(State, bool)> {
    let n = st.phase.len();
    let mut out = Vec::new();
    for i in 0..n {
        match &st.phase[i] {
            Phase::Ready => {
                if st.pc[i] >= prog_len {
                    continue;
                }
                let id = op_id(i, st.pc[i]);
                let started = st.log.len() as u8;
                if is_write(st.pc[i]) {
                    let mut s = st.clone();
                    s.slots[i] = Slot::Pending(id);
                    s.dstart[i] = started;
                    s.phase[i] = Phase::Waiting;
                    out.push((s, false));
                } else {
                    // A read may try the fast path (sample the tail) or
                    // publish straight away like any other op.
                    let mut fast = st.clone();
                    fast.phase[i] = Phase::FastCheck { observed: started };
                    out.push((fast, false));
                    let mut slow = st.clone();
                    slow.slots[i] = Slot::Pending(id);
                    slow.dstart[i] = started;
                    slow.phase[i] = Phase::Waiting;
                    out.push((slow, false));
                }
            }
            Phase::FastCheck { observed } => {
                if st.applied >= *observed || !cfg.guarded {
                    // Complete from the replica. Fresh iff the replica
                    // covers the decided tail at read start.
                    let stale = st.applied < *observed;
                    let mut s = st.clone();
                    s.pc[i] += 1;
                    s.phase[i] = Phase::Ready;
                    s.dstart[i] = 0;
                    out.push((s, stale));
                } else {
                    // Freshness unprovable: fall back to the combined
                    // path (publish like any other op).
                    let mut s = st.clone();
                    s.slots[i] = Slot::Pending(op_id(i, st.pc[i]));
                    s.dstart[i] = *observed;
                    s.phase[i] = Phase::Waiting;
                    out.push((s, false));
                }
            }
            Phase::Waiting => match &st.slots[i] {
                Slot::Done(pos) => {
                    // Delivered. A combined-path read linearizes at its
                    // batch's log position, which must also cover the
                    // tail at read start.
                    let stale = !is_write(st.pc[i]) && *pos < st.dstart[i];
                    let mut s = st.clone();
                    s.slots[i] = Slot::Empty;
                    s.pc[i] += 1;
                    s.phase[i] = Phase::Ready;
                    // The op is over; zero the bookkeeping so states
                    // differing only in dead freshness marks merge.
                    s.dstart[i] = 0;
                    out.push((s, stale));
                }
                Slot::Pending(_) => {
                    // Unclaimed: this client may start its own combine
                    // pass. The advisory flag admits one combiner and
                    // the forced-takeover path admits one more, so at
                    // most two passes ever overlap — modelling exactly
                    // that keeps the racing-combiner/takeover schedules
                    // while keeping the state space tractable.
                    let combiners = st
                        .phase
                        .iter()
                        .filter(|p| {
                            matches!(
                                p,
                                Phase::Claiming { .. }
                                    | Phase::Execute { .. }
                                    | Phase::Apply { .. }
                            )
                        })
                        .count();
                    if combiners < 2 {
                        let mut s = st.clone();
                        s.phase[i] = Phase::Claiming {
                            idx: 0,
                            claimed: Vec::new(),
                        };
                        out.push((s, false));
                    }
                }
                // Claimed: some combiner owns it and will deliver.
                _ => {}
            },
            Phase::Claiming { idx, claimed } => {
                let mut s = st.clone();
                let mut claimed = claimed.clone();
                let at = *idx as usize;
                if at < n {
                    // One claim CAS per step — racing combiners
                    // interleave here and split the pending set.
                    if let Slot::Pending(op) = s.slots[at] {
                        s.slots[at] = Slot::Claimed(op);
                        claimed.push(at as u8);
                    }
                    s.phase[i] = Phase::Claiming {
                        idx: idx + 1,
                        claimed,
                    };
                } else if claimed.is_empty() {
                    // Everything was claimed out from under us; go back
                    // to waiting for our own delivery.
                    s.phase[i] = Phase::Waiting;
                } else {
                    s.phase[i] = Phase::Execute { claimed };
                }
                out.push((s, false));
            }
            Phase::Execute { claimed } => {
                // Append the whole batch as ONE decided log entry.
                let mut ok = st.clone();
                let batch: Vec<u8> = claimed
                    .iter()
                    .map(|&sl| match ok.slots[sl as usize] {
                        Slot::Claimed(op) => op,
                        _ => unreachable!("claimed slot changed owner"),
                    })
                    .collect();
                ok.log.push(batch);
                let pos = ok.log.len() as u8;
                ok.phase[i] = Phase::Apply {
                    claimed: claimed.clone(),
                    pos,
                };
                out.push((ok, false));
                // Tolerated cell fault: the append stutters and must be
                // retried (adversary's choice, bounded by the budget).
                if st.budget > 0 {
                    let mut stut = st.clone();
                    stut.budget -= 1;
                    out.push((stut, false));
                }
            }
            Phase::Apply { claimed, pos } => {
                // The shared replica catches up to the whole log and the
                // per-slot results go out. Until this step runs, readers
                // see the tail ahead of the replica — the window the
                // freshness guard covers.
                let mut s = st.clone();
                s.applied = s.log.len() as u8;
                for &sl in claimed {
                    s.slots[sl as usize] = Slot::Done(*pos);
                }
                s.phase[i] = Phase::Waiting;
                out.push((s, false));
            }
        }
    }
    out
}

/// Exhaustively check one configuration.
pub fn check_combining(cfg: &CombineModelConfig) -> CombineModelReport {
    explore(cfg)
}

/// The small-config grid E18 runs: every configuration here must come
/// back [`CombineModelReport::clean`].
pub fn combining_grid() -> Vec<CombineModelConfig> {
    let mut grid = Vec::new();
    for &(clients, stutters) in &[(2usize, 0u64), (2, 1), (2, 2), (3, 0), (3, 1)] {
        // Three clients with the full stutter budget is the one corner
        // left out: 2-client configs already sweep the budget and the
        // 3-client/1-stutter config covers the retry × racing-combiner
        // interplay, at a tenth of the states.
        grid.push(CombineModelConfig {
            clients,
            rounds: 1,
            stutter_budget: Bound::Finite(stutters),
            guarded: true,
        });
    }
    grid.push(CombineModelConfig {
        clients: 2,
        rounds: 2,
        stutter_budget: Bound::Finite(1),
        guarded: true,
    });
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_is_clean() {
        for cfg in combining_grid() {
            let t0 = std::time::Instant::now();
            let report = check_combining(&cfg);
            eprintln!("{cfg:?} -> {report:?} in {:?}", t0.elapsed());
            assert!(
                report.clean(),
                "violations in {cfg:?}: {report:?} (freshness or hand-off broken)"
            );
            assert!(report.states > 10, "degenerate exploration: {report:?}");
            assert!(report.terminals > 0, "no quiescent state: {report:?}");
        }
    }

    #[test]
    fn unguarded_fast_reads_are_caught() {
        // Removing the freshness guard must surface stale reads — the
        // checker can actually see property-1 violations.
        let report = check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Finite(1),
            guarded: false,
        });
        assert!(
            report.stale_reads > 0,
            "unguarded variant produced no stale reads: {report:?}"
        );
        assert_eq!(report.lost_ops, 0, "{report:?}");
        assert_eq!(report.duplicated_ops, 0, "{report:?}");
    }

    #[test]
    fn stutters_exercise_retries_without_losing_ops() {
        let none = check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Finite(0),
            guarded: true,
        });
        let some = check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Finite(2),
            guarded: true,
        });
        assert!(none.clean() && some.clean());
        assert!(
            some.states > none.states,
            "stutter branches added no states: {none:?} vs {some:?}"
        );
    }

    #[test]
    #[should_panic(expected = "finite stutter budget")]
    fn unbounded_stutter_is_refused() {
        check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Unbounded,
            guarded: true,
        });
    }
}
