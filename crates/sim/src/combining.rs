//! Exhaustive small-config model of ff-store's flat-combining protocol,
//! wait-free read fast path, and combiner crash recovery.
//!
//! The protocol under check is the one `ff-store`'s `combine` module
//! implements: clients publish pending ops into per-client announce
//! slots, any client whose op is still pending may run a combine pass
//! (claim every pending slot by CAS, append the claimed batch to the
//! shard log as *one* decided entry, advance the shared replica,
//! distribute results), and a read may complete wait-free from the
//! shared replica when the replica's applied index covers the tail the
//! reader observed. The model is deliberately small — a handful of
//! clients, a register-shaped log — but the *interleavings* are
//! explored exhaustively, including the adversarial ones the live
//! system cannot be steered into on demand: a combiner parked between
//! append and apply, racing combiners splitting a pending set, a
//! takeover mid-claim. Combiner concurrency is bounded at two live
//! passes, which is what the implementation admits: the advisory busy
//! flag lets one pass run and the forced-takeover path can add exactly
//! one more.
//!
//! Tolerated cell faults are abstracted as **bounded append stutters**:
//! a combine pass's append step may fail and be retried up to the
//! budget ([`ff_spec::Bound::Finite`]), with the adversary choosing
//! when. That is what the robust log constructions reduce tolerated
//! fault kinds to — extra propose rounds and adversarial ordering,
//! never a wrong decision (the reduction itself is verified by the
//! explorer's consensus models; broken *un*tolerated cells are covered
//! by ff-store's divergence tests, not here).
//!
//! # Combiner crashes, leases, and the seal rule
//!
//! [`CombineModelConfig::crashes`] gives the adversary a budget of
//! combiner kills, fired **between claiming and executing** — exactly
//! the window where a dead combiner parks the ops it claimed (the
//! implementation's append + distribute run inside one replica-lock
//! critical section, so a pass that executes at all delivers; the model
//! therefore does not crash mid-`Apply`). Recovery is the lease rule
//! ([`CombineModelConfig::lease`]): the *owner* of a still-claimed op
//! may take it back and republish it — modelled as a
//! `Claimed → Pending` transition, enabled against live (merely slow)
//! combiners too, because a timeout cannot tell the difference. What
//! makes the race safe is the **seal** step
//! ([`CombineModelConfig::sealed`]): at execute time a pass pins each
//! claim it still holds (claimant-tagged, the model's equivalent of the
//! implementation's epoch CAS) and silently drops the rest from its
//! batch. `sealed: false` checks the deliberately broken variant — the
//! stale pass appends reclaimed ops anyway — which must surface
//! double-applies; `lease: false` under a crash budget must surface
//! parked (lost) ops. Both broken variants failing is the evidence that
//! the model can see the bugs the seal/lease rules exist to close.
//!
//! Two properties are checked on every reachable state:
//!
//! 1. **Freshness** — no fast-path read returns a state staler than the
//!    shard's decided tail at the moment the read began.
//! 2. **Hand-off integrity** — no *live* client's pending op is ever
//!    lost (every run quiesces with every such op decided exactly once)
//!    and no op — anyone's — appears twice in the log, no matter which
//!    combiner drains it, how many takeovers interleave, or which
//!    combiners the adversary kills.
//!
//! Setting [`CombineModelConfig::guarded`] to `false` removes the
//! freshness guard (reads answer from the replica unconditionally),
//! which must make the checker report stale reads — the standard
//! broken-variant sanity check that the model can see violations at
//! all.

use ff_spec::Bound;
use std::collections::HashSet;

/// One small configuration of the combining model.
#[derive(Clone, Copy, Debug)]
pub struct CombineModelConfig {
    /// Number of clients (each owns one announce slot).
    pub clients: usize,
    /// Rounds per client; each round is one write followed by one read.
    pub rounds: usize,
    /// Tolerated append stutters for the whole run (the cell-fault
    /// abstraction). Must be [`Bound::Finite`] — unbounded stutter
    /// admits infinite runs, which is exactly the nontermination the
    /// paper's tolerated-fault budgets exclude.
    pub stutter_budget: Bound,
    /// Keep the read fast path's freshness guard. `false` checks the
    /// deliberately broken variant (reads answer unconditionally) and
    /// must produce stale-read violations.
    pub guarded: bool,
    /// Combiner-kill budget for the adversary: each crash permanently
    /// removes one client *between its claim and execute phases*,
    /// leaving everything it claimed parked.
    pub crashes: u8,
    /// Owner-side lease reclaim of claimed ops (`Claimed → Pending`).
    /// Off under a crash budget, parked ops are unrecoverable and the
    /// checker must report them lost.
    pub lease: bool,
    /// Seal claims at execute time (drop reclaimed ops from the stale
    /// batch). `false` checks the deliberately broken variant — with
    /// the lease on it must produce double-applies.
    pub sealed: bool,
}

/// What exhaustive exploration of one configuration found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombineModelReport {
    /// Distinct states visited.
    pub states: usize,
    /// Distinct quiescent (terminal) states.
    pub terminals: usize,
    /// Fast-path reads that returned a state staler than the decided
    /// tail observed at read start (property 1 violations).
    pub stale_reads: usize,
    /// Terminal states where a live client's published op never reached
    /// the log, or where a run wedged with live work still pending
    /// (property 2: lost).
    pub lost_ops: usize,
    /// States where an op appears more than once in the log
    /// (property 2: duplicated).
    pub duplicated_ops: usize,
}

impl CombineModelReport {
    /// No property was violated anywhere in the state space.
    pub fn clean(&self) -> bool {
        self.stale_reads == 0 && self.lost_ops == 0 && self.duplicated_ops == 0
    }
}

/// Announce-slot lifecycle, exactly the implementation's (the claimant
/// tag on `Claimed` plays the packed epoch's role: a seal succeeds only
/// on a claim this pass took, and a reclaim invalidates it).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Slot {
    Empty,
    /// Published, up for grabs by any combiner.
    Pending(u8),
    /// Taken by combiner `by`'s claim CAS.
    Claimed(u8, u8),
    /// Pinned by its combiner's seal, execution imminent — no longer
    /// reclaimable (the implementation's `(SEALED, e)` word).
    Sealed(u8),
    /// Executed; payload is the log length right after the batch
    /// carrying this op was appended (its linearization prefix).
    Done(u8),
}

/// Per-client control state.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Between operations.
    Ready,
    /// A read sampled the decided tail (`observed`) and is about to
    /// check the replica — the adversarial gap is between that sample
    /// and the replica check.
    FastCheck { observed: u8 },
    /// Op published; waiting for a combiner to deliver (the decided
    /// tail at publish lives in `State::dstart` so it survives a
    /// combine pass).
    Waiting,
    /// Running a combine pass: claim CAS over slots `0..idx` done so
    /// far, `claimed` holds the indices won.
    Claiming { idx: u8, claimed: Vec<u8> },
    /// Claim phase finished; the seal + batched append is next (this is
    /// where stutters — and parked-combiner schedules — bite).
    Execute { claimed: Vec<u8> },
    /// Batch appended at log position `pos`; the replica apply (and
    /// result distribution to the slots this pass sealed) is next. A
    /// reader scheduled here sees the tail grown but the replica
    /// lagging — the window the freshness guard exists for.
    Apply { sealed: Vec<u8>, pos: u8 },
    /// Killed by the adversary mid-pass. Permanent: a crashed client
    /// takes no further step, collects nothing, and its announce slot
    /// stays registered — exactly a thread that died in `ff-store`.
    Crashed,
}

/// One explorable state of the whole system.
#[derive(Clone)]
struct State {
    phase: Vec<Phase>,
    /// Next program index per client.
    pc: Vec<u8>,
    slots: Vec<Slot>,
    /// Decided log: each entry is one combine pass's batch.
    log: Vec<Vec<u8>>,
    /// Batches the shared replica has applied.
    applied: u8,
    /// Per client: the decided tail when its in-flight op began (for
    /// the freshness cross-check on delivered reads).
    dstart: Vec<u8>,
    /// Remaining tolerated append stutters.
    budget: u8,
    /// Remaining adversary combiner kills.
    crashes: u8,
}

/// Client `c`'s `k`-th operation id. Even ids are writes, odd are
/// reads (each round is write-then-read), and ids are globally unique.
fn op_id(c: usize, k: u8) -> u8 {
    (c as u8) << 4 | k
}

fn is_write(pc: u8) -> bool {
    pc.is_multiple_of(2)
}

fn claim_mask(claimed: &[u8]) -> u128 {
    claimed.iter().fold(0u128, |m, &sl| m | 1 << sl)
}

/// Compact memoization key. The Vec-shaped [`State`] packs exactly into
/// 124 bits: 27 per client (phase tag + two 4-bit payloads + pc + the
/// freshness mark + slot state + claimant), 16 of globals, and 4 bits
/// of decided position per op (slot op payloads are derivable — slot
/// `i` always carries client `i`'s current op, reclaims republish the
/// *same* op). The claimant is in the key because racing claim lists
/// can legitimately overlap after a reclaim, and which combiner's seal
/// will succeed depends on who holds the claim *now*. Memoizing on this
/// instead of the heap-heavy state cuts the seen-set cost by more than
/// an order of magnitude, which is what makes the 3-client grid configs
/// explorable.
fn key(st: &State, prog_len: u8) -> (u128, u64) {
    let mut hi: u128 = 0;
    for (i, ph) in st.phase.iter().enumerate() {
        let (tag, f1, f2): (u128, u128, u128) = match ph {
            Phase::Ready => (0, 0, 0),
            Phase::FastCheck { observed } => (1, *observed as u128, 0),
            Phase::Waiting => (2, 0, 0),
            Phase::Claiming { idx, claimed } => (3, *idx as u128, claim_mask(claimed)),
            Phase::Execute { claimed } => (4, claim_mask(claimed), 0),
            Phase::Apply { sealed, pos } => (5, claim_mask(sealed), *pos as u128),
            Phase::Crashed => (6, 0, 0),
        };
        let (stag, by, spos): (u128, u128, u128) = match st.slots[i] {
            Slot::Empty => (0, 0, 0),
            Slot::Pending(_) => (1, 0, 0),
            Slot::Claimed(_, by) => (2, by as u128, 0),
            Slot::Sealed(_) => (3, 0, 0),
            Slot::Done(pos) => (4, 0, pos as u128),
        };
        debug_assert!(
            f1 < 16 && f2 < 16 && st.pc[i] < 8 && st.dstart[i] < 16 && by < 4 && spos < 16
        );
        let cell = tag
            | f1 << 3
            | f2 << 7
            | (st.pc[i] as u128) << 11
            | (st.dstart[i] as u128) << 14
            | stag << 18
            | by << 21
            | spos << 23;
        hi |= cell << (27 * i);
    }
    debug_assert!(st.applied < 16 && st.budget < 16 && st.log.len() < 16 && st.crashes < 16);
    hi |= ((st.applied as u128) << 108)
        | ((st.budget as u128) << 112)
        | ((st.log.len() as u128) << 116)
        | ((st.crashes as u128) << 120);
    let mut lo: u64 = 0;
    for (b, batch) in st.log.iter().enumerate() {
        for &op in batch {
            let c = (op >> 4) as u64;
            let k = (op & 0xf) as u64;
            lo |= (b as u64 + 1) << (4 * (c * prog_len as u64 + k));
        }
    }
    (hi, lo)
}

fn explore(cfg: &CombineModelConfig) -> CombineModelReport {
    let n = cfg.clients;
    let prog_len = (cfg.rounds * 2) as u8;
    let budget = match cfg.stutter_budget {
        Bound::Finite(t) => u8::try_from(t).expect("stutter budget fits in u8"),
        _ => panic!("the combining model needs a finite stutter budget"),
    };
    assert!((1..=4).contains(&n), "small configs only (1..=4 clients)");

    let init = State {
        phase: vec![Phase::Ready; n],
        pc: vec![0; n],
        slots: vec![Slot::Empty; n],
        log: Vec::new(),
        applied: 0,
        dstart: vec![0; n],
        budget,
        crashes: cfg.crashes,
    };

    let mut report = CombineModelReport::default();
    let mut seen: HashSet<(u128, u64)> = HashSet::new();
    let mut stack = vec![init];
    while let Some(st) = stack.pop() {
        if !seen.insert(key(&st, prog_len)) {
            continue;
        }
        report.states += 1;
        let flat: Vec<u8> = st.log.iter().flatten().copied().collect();
        for &op in &flat {
            if flat.iter().filter(|&&o| o == op).count() > 1 {
                report.duplicated_ops += 1;
                break;
            }
        }
        let succs = successors(&st, cfg, prog_len);
        if succs.is_empty() {
            report.terminals += 1;
            // Quiescence: every *live* client finished and every live
            // client's write decided exactly once (duplicates were
            // counted above); a wedged run or a missing live write is a
            // lost op. Crashed clients owe nothing — an op a dead
            // client published may legitimately sit parked forever,
            // because nobody is waiting on it.
            let live = |i: &usize| !matches!(st.phase[*i], Phase::Crashed);
            let all_done = (0..n)
                .filter(live)
                .all(|i| st.pc[i] == prog_len && matches!(st.phase[i], Phase::Ready));
            let writes_present = (0..n).filter(live).all(|c| {
                (0..prog_len)
                    .filter(|&k| is_write(k))
                    .all(|k| flat.contains(&op_id(c, k)))
            });
            if !all_done || !writes_present {
                report.lost_ops += 1;
            }
        } else {
            for (succ, stale) in succs {
                if stale {
                    report.stale_reads += 1;
                }
                stack.push(succ);
            }
        }
    }
    report
}

/// All enabled transitions from `st`; the `bool` marks a completed read
/// that violated freshness (returned a prefix older than the decided
/// tail at read start).
fn successors(st: &State, cfg: &CombineModelConfig, prog_len: u8) -> Vec<(State, bool)> {
    let n = st.phase.len();
    let mut out = Vec::new();
    for i in 0..n {
        // The adversary's combiner kill: fired between claiming and
        // executing — the exact window where claims park. (Append and
        // result distribution run inside one replica-lock critical
        // section in the implementation, so `Apply` cannot be split by
        // a crash: a pass that executes delivers.)
        if st.crashes > 0 && matches!(st.phase[i], Phase::Claiming { .. } | Phase::Execute { .. }) {
            let mut s = st.clone();
            s.phase[i] = Phase::Crashed;
            s.dstart[i] = 0;
            s.crashes -= 1;
            out.push((s, false));
        }
        match &st.phase[i] {
            Phase::Ready => {
                if st.pc[i] >= prog_len {
                    continue;
                }
                let id = op_id(i, st.pc[i]);
                let started = st.log.len() as u8;
                if is_write(st.pc[i]) {
                    let mut s = st.clone();
                    s.slots[i] = Slot::Pending(id);
                    s.dstart[i] = started;
                    s.phase[i] = Phase::Waiting;
                    out.push((s, false));
                } else {
                    // A read may try the fast path (sample the tail) or
                    // publish straight away like any other op.
                    let mut fast = st.clone();
                    fast.phase[i] = Phase::FastCheck { observed: started };
                    out.push((fast, false));
                    let mut slow = st.clone();
                    slow.slots[i] = Slot::Pending(id);
                    slow.dstart[i] = started;
                    slow.phase[i] = Phase::Waiting;
                    out.push((slow, false));
                }
            }
            Phase::FastCheck { observed } => {
                if st.applied >= *observed || !cfg.guarded {
                    // Complete from the replica. Fresh iff the replica
                    // covers the decided tail at read start.
                    let stale = st.applied < *observed;
                    let mut s = st.clone();
                    s.pc[i] += 1;
                    s.phase[i] = Phase::Ready;
                    s.dstart[i] = 0;
                    out.push((s, stale));
                } else {
                    // Freshness unprovable: fall back to the combined
                    // path (publish like any other op).
                    let mut s = st.clone();
                    s.slots[i] = Slot::Pending(op_id(i, st.pc[i]));
                    s.dstart[i] = *observed;
                    s.phase[i] = Phase::Waiting;
                    out.push((s, false));
                }
            }
            Phase::Waiting => match &st.slots[i] {
                Slot::Done(pos) => {
                    // Delivered. A combined-path read linearizes at its
                    // batch's log position, which must also cover the
                    // tail at read start.
                    let stale = !is_write(st.pc[i]) && *pos < st.dstart[i];
                    let mut s = st.clone();
                    s.slots[i] = Slot::Empty;
                    s.pc[i] += 1;
                    s.phase[i] = Phase::Ready;
                    // The op is over; zero the bookkeeping so states
                    // differing only in dead freshness marks merge.
                    s.dstart[i] = 0;
                    out.push((s, stale));
                }
                Slot::Pending(_) => {
                    // Unclaimed: this client may start its own combine
                    // pass. The advisory flag admits one combiner and
                    // the forced-takeover path admits one more, so at
                    // most two *live* passes ever overlap — modelling
                    // exactly that keeps the racing-combiner/takeover
                    // schedules while keeping the state space
                    // tractable. (Crashed combiners don't count: a dead
                    // flag-holder cannot exclude anyone, that is what
                    // the forced path is for.)
                    let combiners = st
                        .phase
                        .iter()
                        .filter(|p| {
                            matches!(
                                p,
                                Phase::Claiming { .. }
                                    | Phase::Execute { .. }
                                    | Phase::Apply { .. }
                            )
                        })
                        .count();
                    if combiners < 2 {
                        let mut s = st.clone();
                        s.phase[i] = Phase::Claiming {
                            idx: 0,
                            claimed: Vec::new(),
                        };
                        out.push((s, false));
                    }
                }
                Slot::Claimed(op, _) if cfg.lease => {
                    // The lease reclaim: the owner takes a claimed op
                    // back and republishes it. Enabled against live
                    // combiners too — a timeout cannot tell slow from
                    // dead, which is exactly why the seal step must
                    // exist. (The implementation republishes under a
                    // bumped epoch; here the claimant tag dies with the
                    // transition, same effect.)
                    let mut s = st.clone();
                    s.slots[i] = Slot::Pending(*op);
                    out.push((s, false));
                }
                // Claimed (no lease) or sealed: some combiner owns it
                // and will deliver — or never will, if it died and
                // there is no lease. Nothing for the owner to do.
                _ => {}
            },
            Phase::Claiming { idx, claimed } => {
                let mut s = st.clone();
                let mut claimed = claimed.clone();
                let at = *idx as usize;
                if at < n {
                    // One claim CAS per step — racing combiners
                    // interleave here and split the pending set.
                    if let Slot::Pending(op) = s.slots[at] {
                        s.slots[at] = Slot::Claimed(op, i as u8);
                        claimed.push(at as u8);
                    }
                    s.phase[i] = Phase::Claiming {
                        idx: idx + 1,
                        claimed,
                    };
                } else if claimed.is_empty() {
                    // Everything was claimed out from under us; go back
                    // to waiting for our own delivery.
                    s.phase[i] = Phase::Waiting;
                } else {
                    s.phase[i] = Phase::Execute { claimed };
                }
                out.push((s, false));
            }
            Phase::Execute { claimed } => {
                // Seal + append the surviving batch as ONE decided log
                // entry. The seal drops every claim this pass no longer
                // holds — its owner reclaimed it (and possibly someone
                // else already claimed, executed, or delivered it); it
                // is not ours to apply.
                let mut ok = st.clone();
                let mut sealed: Vec<u8> = Vec::new();
                let mut batch: Vec<u8> = Vec::new();
                for &sl in claimed {
                    match ok.slots[sl as usize] {
                        Slot::Claimed(op, by) if by as usize == i => {
                            ok.slots[sl as usize] = Slot::Sealed(op);
                            sealed.push(sl);
                            batch.push(op);
                        }
                        _ if cfg.sealed => {}
                        // The broken (seal-less) variant: a stale pass
                        // appends whatever it claimed regardless of who
                        // holds it now — the double-apply the seal CAS
                        // exists to prevent. (The op id is recoverable
                        // as the slot owner's current op: a reclaim
                        // republishes the same op, and an owner that
                        // already collected it has moved past — its
                        // slot is `Empty` and skipped.)
                        Slot::Empty => {}
                        _ => batch.push(op_id(sl as usize, ok.pc[sl as usize])),
                    }
                }
                if batch.is_empty() {
                    // Every claim was reclaimed out from under us; the
                    // pass fizzles and we go back to waiting.
                    ok.phase[i] = Phase::Waiting;
                    out.push((ok, false));
                } else {
                    ok.log.push(batch);
                    let pos = ok.log.len() as u8;
                    ok.phase[i] = Phase::Apply { sealed, pos };
                    out.push((ok, false));
                    // Tolerated cell fault: the append stutters and must
                    // be retried (adversary's choice, bounded by the
                    // budget).
                    if st.budget > 0 {
                        let mut stut = st.clone();
                        stut.budget -= 1;
                        out.push((stut, false));
                    }
                }
            }
            Phase::Apply { sealed, pos } => {
                // The shared replica catches up to the whole log and the
                // per-slot results go out — to the slots this pass
                // sealed, which are exactly the ops its batch carried.
                // Until this step runs, readers see the tail ahead of
                // the replica — the window the freshness guard covers.
                let mut s = st.clone();
                s.applied = s.log.len() as u8;
                for &sl in sealed {
                    s.slots[sl as usize] = Slot::Done(*pos);
                }
                s.phase[i] = Phase::Waiting;
                out.push((s, false));
            }
            Phase::Crashed => {}
        }
    }
    out
}

/// Exhaustively check one configuration.
pub fn check_combining(cfg: &CombineModelConfig) -> CombineModelReport {
    explore(cfg)
}

/// The small-config grid E18 runs: every configuration here must come
/// back [`CombineModelReport::clean`]. Crash-free (the crash-recovery
/// corner has its own grid, [`combining_crash_grid`]).
pub fn combining_grid() -> Vec<CombineModelConfig> {
    let mut grid = Vec::new();
    for &(clients, stutters) in &[(2usize, 0u64), (2, 1), (2, 2), (3, 0), (3, 1)] {
        // Three clients with the full stutter budget is the one corner
        // left out: 2-client configs already sweep the budget and the
        // 3-client/1-stutter config covers the retry × racing-combiner
        // interplay, at a tenth of the states.
        grid.push(CombineModelConfig {
            clients,
            rounds: 1,
            stutter_budget: Bound::Finite(stutters),
            guarded: true,
            crashes: 0,
            lease: false,
            sealed: true,
        });
    }
    grid.push(CombineModelConfig {
        clients: 2,
        rounds: 2,
        stutter_budget: Bound::Finite(1),
        guarded: true,
        crashes: 0,
        lease: false,
        sealed: true,
    });
    grid
}

/// The combiner-crash-recovery grid: adversarial kills with the lease
/// reclaim and seal rule on. Every configuration must come back
/// [`CombineModelReport::clean`] — no live op lost to a parked claim,
/// no op double-applied by a reclaim racing a stale pass. The
/// crash-free `lease: true` entry isolates the reclaim-vs-live-combiner
/// race from crash recovery proper.
pub fn combining_crash_grid() -> Vec<CombineModelConfig> {
    let mut grid = Vec::new();
    for &(clients, crashes) in &[(2usize, 0u8), (2, 1), (2, 2), (3, 1)] {
        grid.push(CombineModelConfig {
            clients,
            rounds: 1,
            stutter_budget: Bound::Finite(0),
            guarded: true,
            crashes,
            lease: true,
            sealed: true,
        });
    }
    // One config crossing crash recovery with append stutters: a retry
    // loop must not reopen the exactly-once argument.
    grid.push(CombineModelConfig {
        clients: 2,
        rounds: 1,
        stutter_budget: Bound::Finite(1),
        guarded: true,
        crashes: 1,
        lease: true,
        sealed: true,
    });
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_is_clean() {
        for cfg in combining_grid() {
            let t0 = std::time::Instant::now();
            let report = check_combining(&cfg);
            eprintln!("{cfg:?} -> {report:?} in {:?}", t0.elapsed());
            assert!(
                report.clean(),
                "violations in {cfg:?}: {report:?} (freshness or hand-off broken)"
            );
            assert!(report.states > 10, "degenerate exploration: {report:?}");
            assert!(report.terminals > 0, "no quiescent state: {report:?}");
        }
    }

    #[test]
    fn the_crash_grid_is_clean() {
        // The reclaim rule's exactly-once proof: under every combiner
        // kill the budget admits, interleaved with owner reclaims and
        // takeover passes, no live op is lost and no op is applied
        // twice.
        for cfg in combining_crash_grid() {
            let t0 = std::time::Instant::now();
            let report = check_combining(&cfg);
            eprintln!("{cfg:?} -> {report:?} in {:?}", t0.elapsed());
            assert!(
                report.clean(),
                "violations in {cfg:?}: {report:?} (crash recovery broken)"
            );
            assert!(report.terminals > 0, "no quiescent state: {report:?}");
        }
    }

    #[test]
    fn crash_without_lease_parks_ops() {
        // The ROADMAP bug: kill a combiner between claim and execute
        // with no reclaim rule, and some schedule wedges a live client
        // forever on its parked op. The checker must see it.
        let report = check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Finite(0),
            guarded: true,
            crashes: 1,
            lease: false,
            sealed: true,
        });
        assert!(
            report.lost_ops > 0,
            "no parked ops without the lease: {report:?}"
        );
        assert_eq!(report.duplicated_ops, 0, "{report:?}");
    }

    #[test]
    fn lease_without_seal_double_applies() {
        // The other half of the proof obligation: the reclaim rule is
        // only safe *because* of the seal step. Remove it and a stale
        // pass re-appends an op its owner reclaimed — the checker must
        // see the double-apply. No crash budget needed: a live-but-slow
        // combiner racing a reclaim is enough.
        let report = check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Finite(0),
            guarded: true,
            crashes: 0,
            lease: true,
            sealed: false,
        });
        assert!(
            report.duplicated_ops > 0,
            "seal-less variant produced no double-applies: {report:?}"
        );
    }

    #[test]
    fn unguarded_fast_reads_are_caught() {
        // Removing the freshness guard must surface stale reads — the
        // checker can actually see property-1 violations.
        let report = check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Finite(1),
            guarded: false,
            crashes: 0,
            lease: false,
            sealed: true,
        });
        assert!(
            report.stale_reads > 0,
            "unguarded variant produced no stale reads: {report:?}"
        );
        assert_eq!(report.lost_ops, 0, "{report:?}");
        assert_eq!(report.duplicated_ops, 0, "{report:?}");
    }

    #[test]
    fn stutters_exercise_retries_without_losing_ops() {
        let none = check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Finite(0),
            guarded: true,
            crashes: 0,
            lease: false,
            sealed: true,
        });
        let some = check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Finite(2),
            guarded: true,
            crashes: 0,
            lease: false,
            sealed: true,
        });
        assert!(none.clean() && some.clean());
        assert!(
            some.states > none.states,
            "stutter branches added no states: {none:?} vs {some:?}"
        );
    }

    #[test]
    #[should_panic(expected = "finite stutter budget")]
    fn unbounded_stutter_is_refused() {
        check_combining(&CombineModelConfig {
            clients: 2,
            rounds: 1,
            stutter_budget: Bound::Unbounded,
            guarded: true,
            crashes: 0,
            lease: false,
            sealed: true,
        });
    }
}
