//! Context-bounded systematic search (iterative context bounding, after
//! Musuvathi & Qadeer): explore every execution with at most `c`
//! preemptive context switches.
//!
//! Full exhaustive exploration grows combinatorially in processes and
//! fault opportunities; most violations, however, need only a handful of
//! preemptions (E4's canonical witness needs **zero** — it is a
//! sequential schedule with one fault). Bounding preemptions turns the
//! search into a polynomial-per-bound sweep that finds shallow bugs in
//! configurations the full explorer cannot finish, while remaining
//! *systematic*: within the bound, coverage is complete.
//!
//! A *preemption* is charged when the scheduler switches away from a
//! process that is still runnable. Switching after a process decides or
//! blocks is free (non-preemptive). Fault branching is not charged — the
//! budget limits scheduling nondeterminism only, mirroring the original
//! technique.

use crate::explorer::{ExploreReport, ExplorerConfig, Witness};
use crate::state::{Choice, SimState};
use ff_spec::{check_consensus, ProcessId};
use std::collections::HashSet;

/// Explore every execution from `initial` with at most `max_preemptions`
/// preemptive context switches. The report's `truncated` flag is set
/// when resource caps were hit (not when the preemption bound pruned —
/// pruning by bound is the point of the technique).
pub fn explore_context_bounded(
    initial: SimState,
    config: ExplorerConfig,
    max_preemptions: u32,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut visited: HashSet<Vec<u64>> = HashSet::new();

    if initial.is_terminal() {
        report.terminals = 1;
        let outcomes = initial.outcomes();
        let verdict = check_consensus(&outcomes, None);
        if let Some(agreed) = verdict.agreed {
            report.agreed_values.insert(agreed.0);
        }
        if !verdict.ok() {
            report.violation_counts.absorb(&verdict.violations);
            report.violation = Some(Witness {
                choices: Vec::new(),
                outcomes,
                violations: verdict.violations,
            });
        }
        return report;
    }

    struct Frame {
        state: SimState,
        choices: Vec<Choice>,
        next: usize,
        leading: Option<Choice>,
        /// The process that took the step leading here (None at root).
        last: Option<ProcessId>,
        /// Preemptions consumed on this path.
        used: u32,
    }

    let key_of = |state: &SimState, last: Option<ProcessId>, used: u32| -> Vec<u64> {
        let mut k = state.key();
        k.push(match last {
            None => u64::MAX,
            Some(p) => p.0 as u64,
        });
        k.push(used as u64);
        k
    };

    let root_key = key_of(&initial, None, 0);
    visited.insert(root_key);
    report.states_expanded = 1;
    let mut stack = vec![Frame {
        choices: initial.choices(),
        state: initial,
        next: 0,
        leading: None,
        last: None,
        used: 0,
    }];

    while let Some(frame) = stack.last_mut() {
        if frame.next >= frame.choices.len() {
            stack.pop();
            continue;
        }
        let choice = frame.choices[frame.next];
        frame.next += 1;

        // Charge a preemption when we switch away from a still-runnable
        // process.
        let preempts = match frame.last {
            Some(last) if last != choice.pid => frame.state.runnable().contains(&last),
            _ => false,
        };
        let used = frame.used + preempts as u32;
        if used > max_preemptions {
            continue; // pruned by the bound — by design, not truncation
        }

        let succ = frame.state.successor(choice);
        let depth = stack.len();
        report.max_depth_seen = report.max_depth_seen.max(depth);

        if succ.is_terminal() {
            report.terminals += 1;
            let outcomes = succ.outcomes();
            let verdict = check_consensus(&outcomes, None);
            if let Some(agreed) = verdict.agreed {
                report.agreed_values.insert(agreed.0);
            }
            if !verdict.ok() {
                report.violation_counts.absorb(&verdict.violations);
            }
            if !verdict.ok() && report.violation.is_none() {
                let mut choices: Vec<Choice> = stack.iter().filter_map(|f| f.leading).collect();
                choices.push(choice);
                report.violation = Some(Witness {
                    choices,
                    outcomes,
                    violations: verdict.violations,
                });
                if config.stop_at_first_violation {
                    return report;
                }
            }
            continue;
        }

        let key = key_of(&succ, Some(choice.pid), used);
        if !visited.insert(key) {
            continue;
        }
        report.states_expanded += 1;
        if report.states_expanded >= config.max_states {
            report.truncated = true;
            return report;
        }
        if depth >= config.max_depth {
            report.truncated = true;
            continue;
        }
        stack.push(Frame {
            choices: succ.choices(),
            state: succ,
            next: 0,
            leading: Some(choice),
            last: Some(choice.pid),
            used,
        });
    }
    report
}

/// Iterative context bounding: run [`explore_context_bounded`] with
/// bounds `0, 1, …, max_bound`, returning at the first bound that yields
/// a violation (with that bound), or the last report.
pub fn iterative_context_bounding(
    make_initial: impl Fn() -> SimState,
    config: ExplorerConfig,
    max_bound: u32,
) -> (u32, ExploreReport) {
    let mut last = (0, ExploreReport::default());
    for bound in 0..=max_bound {
        let report = explore_context_bounded(make_initial(), config, bound);
        if report.violation.is_some() {
            return (bound, report);
        }
        last = (bound, report);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_ctl::FaultPlan;
    use crate::heap::Heap;
    use crate::ops::{Op, OpResult};
    use crate::process::{Process, Status};
    use ff_spec::{Bound, Input, ObjectId, BOTTOM};

    /// The Herlihy one-shot (as in the explorer tests).
    #[derive(Clone)]
    struct OneShot {
        input: Input,
        status: Status,
    }
    impl OneShot {
        fn new(v: u32) -> Self {
            OneShot {
                input: Input(v),
                status: Status::Running,
            }
        }
    }
    impl Process for OneShot {
        fn next_op(&self) -> Op {
            Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: self.input.to_word(),
            }
        }
        fn apply(&mut self, result: OpResult) -> Status {
            let old = result.cas_old();
            self.status = Status::Decided(Input::from_word(old).unwrap_or(self.input));
            self.status
        }
        fn status(&self) -> Status {
            self.status
        }
        fn input(&self) -> Input {
            self.input
        }
        fn snapshot(&self) -> Vec<u64> {
            vec![
                self.input.0 as u64,
                match self.status {
                    Status::Running => 0,
                    Status::Decided(v) => 1 + v.0 as u64,
                },
            ]
        }
        fn box_clone(&self) -> Box<dyn Process> {
            Box::new(self.clone())
        }
    }

    fn one_shots(inputs: &[u32]) -> Vec<Box<dyn Process>> {
        inputs
            .iter()
            .map(|&v| Box::new(OneShot::new(v)) as Box<dyn Process>)
            .collect()
    }

    #[test]
    fn zero_preemptions_suffice_for_the_theorem18_witness() {
        // The canonical violation is a sequential schedule: bound 0 finds it.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan);
        let report = explore_context_bounded(state, ExplorerConfig::default(), 0);
        assert!(report.violation.is_some(), "{report:?}");
    }

    #[test]
    fn safe_configurations_stay_safe_under_any_bound() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        for bound in 0..3 {
            let state = SimState::new(one_shots(&[10, 20]), Heap::new(1, 0), plan.clone());
            let report = explore_context_bounded(state, ExplorerConfig::default(), bound);
            assert!(report.violation.is_none(), "bound {bound}: {report:?}");
            assert!(!report.truncated);
        }
    }

    #[test]
    fn bounded_search_explores_fewer_states_than_full() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let mk = || SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone());
        let cfg = ExplorerConfig {
            stop_at_first_violation: false,
            ..ExplorerConfig::default()
        };
        let bounded = explore_context_bounded(mk(), cfg, 0);
        let full = crate::explorer::explore(mk(), cfg);
        assert!(
            bounded.terminals <= full.terminals,
            "bound 0 must not see more terminals ({} vs {})",
            bounded.terminals,
            full.terminals
        );
    }

    #[test]
    fn iterative_bounding_reports_the_minimal_bound() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let (bound, report) = iterative_context_bounding(
            || SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone()),
            ExplorerConfig::default(),
            4,
        );
        assert_eq!(bound, 0, "the witness needs no preemptions");
        assert!(report.violation.is_some());
    }

    #[test]
    fn witness_from_bounded_search_replays() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(one_shots(&[10, 20, 30]), Heap::new(1, 0), plan.clone());
        let report = explore_context_bounded(state, ExplorerConfig::default(), 1);
        let w = report.violation.expect("violation expected");
        let replay = w.replay(one_shots(&[10, 20, 30]), Heap::new(1, 0), &plan);
        assert!(!check_consensus(&replay.outcomes, None).ok());
    }
}
