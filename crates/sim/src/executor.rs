//! The run-to-completion driver for simulated executions.
//!
//! [`run`] drives a set of step-machine processes over a [`Heap`] under a
//! [`Scheduler`], a [`FaultPlan`]/[`FaultBudget`] and a [`FaultOracle`],
//! producing the per-process [`Outcome`]s plus the full [`History`] and
//! [`Trace`] of the execution. All nondeterminism lives in the scheduler
//! and the oracle, so any execution is exactly replayable.

use crate::fault_ctl::{FaultBudget, FaultOracle, FaultPlan, StepDecision};
use crate::heap::Heap;
use crate::ops::{FaultDecision, Op, OpResult};
use crate::process::{Process, Status};
use crate::scheduler::Scheduler;
use crate::trace::{Trace, TraceEvent};
use ff_spec::{classify_cas, CasClassification, FaultKind, History, OpEvent, Outcome, ProcessId};

impl FaultPlan {
    /// If this plan's canonical fault were applied to a CAS step seeing
    /// `pre` with arguments `exp`/`new`, would it be observable (an actual
    /// fault per Definition 1)? Returns the decision when so.
    ///
    /// This is the *fault opportunity* predicate: the executor consults
    /// the oracle, and the explorer branches, exactly at steps where this
    /// returns `Some`.
    pub fn opportunity(
        &self,
        obj: ff_spec::ObjectId,
        pre: ff_spec::Word,
        exp: ff_spec::Word,
        new: ff_spec::Word,
    ) -> Option<StepDecision> {
        if self.kind_of(obj) == FaultKind::Nonresponsive {
            // Hanging is always observable (the operation never returns).
            return Some(StepDecision::Hang);
        }
        let d = self.decision(obj, pre, exp, new);
        if d.observable(pre, exp, new) {
            Some(StepDecision::Apply(d))
        } else {
            None
        }
    }
}

/// The effect of executing one step on one process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepEffect {
    /// The process received a response and advanced to this status.
    Advanced(Status),
    /// The operation hung (nonresponsive fault): the process is blocked
    /// forever.
    Blocked,
}

/// Execute a single step of `process` with the given (already normalized)
/// decision, updating heap, budget, history and trace. Shared between the
/// run-to-completion driver and the exhaustive explorer so both execute
/// steps identically.
pub(crate) fn execute_step(
    heap: &mut Heap,
    budget: &mut FaultBudget,
    process: &mut dyn Process,
    pid: ProcessId,
    mut decision: StepDecision,
    history: Option<&mut History>,
    trace: Option<(&mut Trace, u64)>,
) -> StepEffect {
    let op = process.next_op();
    let (effect, record, faulted) = match op {
        Op::Cas { obj, exp, new } => {
            let pre = heap.peek_cas(obj);
            // Normalize: a fault decision that would actually be
            // observable requires (and consumes) budget; downgrade to
            // correct when none is available. Unobservable "faults" are
            // applied as-is — they coincide with correct behavior.
            match decision {
                StepDecision::Apply(FaultDecision::Correct) => {}
                StepDecision::Apply(d) => {
                    if d.observable(pre, exp, new) {
                        if budget.can_fault(obj) {
                            budget.consume(obj);
                        } else {
                            decision = StepDecision::Apply(FaultDecision::Correct);
                        }
                    }
                }
                StepDecision::Hang => {
                    if budget.can_fault(obj) {
                        budget.consume(obj);
                    } else {
                        decision = StepDecision::Apply(FaultDecision::Correct);
                    }
                }
            }
            match decision {
                StepDecision::Hang => (StepEffect::Blocked, None, true),
                StepDecision::Apply(d) => {
                    let record = heap.apply_cas(obj, exp, new, d);
                    let faulted = !matches!(classify_cas(&record), CasClassification::Correct);
                    if let Some(h) = history {
                        h.push(OpEvent {
                            process: pid,
                            object: obj,
                            record,
                            injected_fault: !matches!(d, FaultDecision::Correct),
                        });
                    }
                    let status = process.apply(OpResult::Cas {
                        old: record.returned,
                    });
                    (StepEffect::Advanced(status), Some(record), faulted)
                }
            }
        }
        Op::Read(reg) => {
            let val = heap.read_register(reg);
            let status = process.apply(OpResult::Read(val));
            (StepEffect::Advanced(status), None, false)
        }
        Op::Write(reg, val) => {
            heap.write_register(reg, val);
            let status = process.apply(OpResult::Write);
            (StepEffect::Advanced(status), None, false)
        }
        Op::Local => {
            let status = process.apply(OpResult::Local);
            (StepEffect::Advanced(status), None, false)
        }
    };
    if let Some((t, index)) = trace {
        t.push(TraceEvent {
            index,
            pid,
            op,
            decision,
            record,
            faulted,
            status_after: match effect {
                StepEffect::Advanced(s) => Some(s),
                StepEffect::Blocked => None,
            },
        });
    }
    effect
}

/// Configuration for [`run`].
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Abort (reporting `completed = false`) after this many total steps.
    /// Guards against nonterminating executions (e.g. unbounded silent
    /// faults foiling the Herlihy protocol, Section 3.4).
    pub step_limit: u64,
    /// Record a full [`Trace`] (disable for high-volume stress runs).
    pub record_trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            step_limit: 1_000_000,
            record_trace: true,
        }
    }
}

/// The complete result of one simulated execution.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-process outcomes (decision + step counts).
    pub outcomes: Vec<Outcome>,
    /// The linearized operation history.
    pub history: History,
    /// The step-by-step trace (empty if disabled).
    pub trace: Trace,
    /// Total steps executed.
    pub total_steps: u64,
    /// `true` iff every process terminated (decided); `false` when the
    /// step limit was hit or a process was blocked by a nonresponsive
    /// fault.
    pub completed: bool,
}

/// Drive `processes` to completion over `heap` under `plan`.
///
/// The oracle is consulted exactly at *fault opportunities* — CAS steps on
/// objects with remaining budget where the plan's canonical fault would be
/// observable — which keeps scripted replays aligned with explorer
/// witnesses.
pub fn run(
    mut processes: Vec<Box<dyn Process>>,
    mut heap: Heap,
    plan: &FaultPlan,
    scheduler: &mut dyn Scheduler,
    oracle: &mut dyn FaultOracle,
    config: RunConfig,
) -> RunReport {
    let n = processes.len();
    let mut budget = FaultBudget::new(plan, heap.cas_count());
    let mut blocked = vec![false; n];
    let mut steps = vec![0u64; n];
    let mut history = History::new();
    let mut trace = Trace::new();
    let mut total_steps = 0u64;

    loop {
        let runnable: Vec<ProcessId> = (0..n)
            .filter(|&i| !blocked[i] && processes[i].status() == Status::Running)
            .map(ProcessId)
            .collect();
        if runnable.is_empty() {
            break;
        }
        if total_steps >= config.step_limit {
            break;
        }
        let pid = scheduler.pick(&runnable);
        debug_assert!(
            runnable.contains(&pid),
            "scheduler picked non-runnable {pid}"
        );

        let decision = match processes[pid.0].next_op() {
            Op::Cas { obj, exp, new } if budget.can_fault(obj) => {
                let pre = heap.peek_cas(obj);
                if plan.opportunity(obj, pre, exp, new).is_some() {
                    let op = processes[pid.0].next_op();
                    oracle.decide(pid, &op, pre)
                } else {
                    StepDecision::Apply(FaultDecision::Correct)
                }
            }
            _ => StepDecision::Apply(FaultDecision::Correct),
        };

        let effect = execute_step(
            &mut heap,
            &mut budget,
            processes[pid.0].as_mut(),
            pid,
            decision,
            Some(&mut history),
            config.record_trace.then_some((&mut trace, total_steps)),
        );
        steps[pid.0] += 1;
        total_steps += 1;
        if effect == StepEffect::Blocked {
            blocked[pid.0] = true;
        }
    }

    let outcomes: Vec<Outcome> = processes
        .iter()
        .enumerate()
        .map(|(i, p)| Outcome {
            process: ProcessId(i),
            input: p.input(),
            decision: p.status().decision(),
            steps: steps[i],
        })
        .collect();
    let completed = outcomes.iter().all(|o| o.decision.is_some());

    RunReport {
        outcomes,
        history,
        trace,
        total_steps,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_ctl::{GreedyFault, NeverFault};
    use crate::scheduler::RoundRobin;
    use ff_spec::{check_consensus, Bound, Input, ObjectId, BOTTOM};

    /// A process that CASes its input into object 0 once (expecting ⊥) and
    /// decides whatever ends up chosen: the Herlihy protocol inlined, used
    /// here to test the executor itself.
    #[derive(Clone, Debug)]
    struct OneShot {
        input: Input,
        status: Status,
        fired: bool,
    }

    impl OneShot {
        fn new(input: Input) -> Self {
            OneShot {
                input,
                status: Status::Running,
                fired: false,
            }
        }
    }

    impl Process for OneShot {
        fn next_op(&self) -> Op {
            Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: self.input.to_word(),
            }
        }

        fn apply(&mut self, result: OpResult) -> Status {
            assert!(!self.fired);
            self.fired = true;
            let old = result.cas_old();
            let decided = match Input::from_word(old) {
                None => self.input, // old was ⊥: we won
                Some(winner) => winner,
            };
            self.status = Status::Decided(decided);
            self.status
        }

        fn status(&self) -> Status {
            self.status
        }

        fn input(&self) -> Input {
            self.input
        }

        fn snapshot(&self) -> Vec<u64> {
            vec![
                self.input.0 as u64,
                self.fired as u64,
                match self.status {
                    Status::Running => 0,
                    Status::Decided(v) => 1 + v.0 as u64,
                },
            ]
        }

        fn box_clone(&self) -> Box<dyn Process> {
            Box::new(self.clone())
        }
    }

    fn one_shots(inputs: &[u32]) -> Vec<Box<dyn Process>> {
        inputs
            .iter()
            .map(|&v| Box::new(OneShot::new(Input(v))) as Box<dyn Process>)
            .collect()
    }

    #[test]
    fn fault_free_one_shot_agrees() {
        let report = run(
            one_shots(&[10, 20, 30]),
            Heap::new(1, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        );
        assert!(report.completed);
        let verdict = check_consensus(&report.outcomes, None);
        assert!(verdict.ok(), "{:?}", verdict.violations);
        assert_eq!(verdict.agreed, Some(Input(10))); // p0 ran first
        assert_eq!(report.total_steps, 3);
        assert!(report.history.within(&ff_spec::Tolerance::new(0, 0, 3)));
    }

    #[test]
    fn greedy_override_breaks_one_shot() {
        // With an unboundedly-faulty object, later CASes override earlier
        // ones: the naive single-object protocol loses consistency. This is
        // the motivation for the paper's constructions (E9).
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let report = run(
            one_shots(&[10, 20, 30]),
            Heap::new(1, 0),
            &plan,
            &mut RoundRobin::new(),
            &mut GreedyFault::new(plan.clone()),
            RunConfig::default(),
        );
        assert!(report.completed);
        let verdict = check_consensus(&report.outcomes, None);
        assert!(
            !verdict.ok(),
            "overriding faults must break the naive protocol"
        );
        assert!(report.history.faulty_object_count() == 1);
        assert!(report.trace.fault_steps().count() >= 1);
    }

    #[test]
    fn budget_limits_faults() {
        // t = 1: only the first opportunity faults; with 3 processes the
        // third CAS must behave correctly.
        let plan = FaultPlan::overriding(1, Bound::Finite(1));
        let report = run(
            one_shots(&[10, 20, 30]),
            Heap::new(1, 0),
            &plan,
            &mut RoundRobin::new(),
            &mut GreedyFault::new(plan.clone()),
            RunConfig::default(),
        );
        assert_eq!(report.history.max_faults_per_object(), 1);
        assert!(report.history.within(&ff_spec::Tolerance::new(1, 1, 3)));
    }

    #[test]
    fn nonresponsive_fault_blocks_a_process() {
        let plan = FaultPlan {
            kind: FaultKind::Nonresponsive,
            faulty: vec![ObjectId(0)],
            per_object: Bound::Finite(1),
            kind_overrides: Default::default(),
        };
        let report = run(
            one_shots(&[10, 20]),
            Heap::new(1, 0),
            &plan,
            &mut RoundRobin::new(),
            &mut GreedyFault::new(plan.clone()),
            RunConfig::default(),
        );
        assert!(!report.completed);
        // p0 hung; p1's CAS (budget exhausted) behaves correctly.
        assert_eq!(report.outcomes[0].decision, None);
        assert!(report.outcomes[1].decision.is_some());
        let verdict = check_consensus(&report.outcomes, None);
        assert!(!verdict.ok());
    }

    #[test]
    fn step_limit_guards_nontermination() {
        // A process that loops forever on local steps.
        #[derive(Clone)]
        struct Spinner;
        impl Process for Spinner {
            fn next_op(&self) -> Op {
                Op::Local
            }
            fn apply(&mut self, _r: OpResult) -> Status {
                Status::Running
            }
            fn status(&self) -> Status {
                Status::Running
            }
            fn input(&self) -> Input {
                Input(0)
            }
            fn snapshot(&self) -> Vec<u64> {
                vec![]
            }
            fn box_clone(&self) -> Box<dyn Process> {
                Box::new(self.clone())
            }
        }
        let report = run(
            vec![Box::new(Spinner)],
            Heap::new(0, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig {
                step_limit: 100,
                record_trace: false,
            },
        );
        assert!(!report.completed);
        assert_eq!(report.total_steps, 100);
        assert!(report.trace.is_empty());
    }

    #[test]
    fn registers_round_trip_through_executor() {
        use crate::heap::RegId;
        #[derive(Clone)]
        struct RegEcho {
            phase: u8,
            seen: u64,
            status: Status,
        }
        impl Process for RegEcho {
            fn next_op(&self) -> Op {
                match self.phase {
                    0 => Op::Write(RegId(0), 42),
                    _ => Op::Read(RegId(0)),
                }
            }
            fn apply(&mut self, r: OpResult) -> Status {
                match self.phase {
                    0 => {
                        assert_eq!(r, OpResult::Write);
                        self.phase = 1;
                    }
                    _ => {
                        if let OpResult::Read(v) = r {
                            self.seen = v;
                            self.status = Status::Decided(Input(v as u32));
                        }
                    }
                }
                self.status
            }
            fn status(&self) -> Status {
                self.status
            }
            fn input(&self) -> Input {
                Input(42)
            }
            fn snapshot(&self) -> Vec<u64> {
                vec![self.phase as u64, self.seen]
            }
            fn box_clone(&self) -> Box<dyn Process> {
                Box::new(self.clone())
            }
        }
        let report = run(
            vec![Box::new(RegEcho {
                phase: 0,
                seen: 0,
                status: Status::Running,
            })],
            Heap::new(0, 1),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        );
        assert!(report.completed);
        assert_eq!(report.outcomes[0].decision, Some(Input(42)));
    }
}
