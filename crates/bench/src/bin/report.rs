//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ff-bench --bin report            # all experiments
//! cargo run --release -p ff-bench --bin report -- e3      # one experiment
//! cargo run --release -p ff-bench --bin report -- list    # list ids
//! cargo run --release -p ff-bench --bin report -- all --json out.json
//! cargo run --release -p ff-bench --bin report -- all --json-out BENCH_report.json
//! cargo run --release -p ff-bench --bin report -- all --threads 4
//! ```
//!
//! `--threads N` sets the explorer worker count for every exhaustive
//! scan (equivalent to `FF_EXPLORER_THREADS=N`; default: all cores).
//!
//! `--json` writes the full rendered tables; `--json-out` writes the
//! machine-readable run summary (per-experiment verdict + wall time,
//! plus an explorer throughput calibration) CI trends on.

use ff_workload::{find, registry, to_json, Experiment, ExperimentResult, JsonValue};
use std::time::Instant;

/// All experiments: the workload registry (E1–E14) plus the store-level
/// soak (E15, in `ff-store`), the network soaks (E16/E17, in `ff-net`),
/// the flat-combining study (E18, in this crate's lib), the
/// deterministic whole-system simulation corpus and its durability
/// study (E19/E20, in `ff-dst`) and the consensus-substrate hierarchy
/// sweep (E21, in this crate's lib) — they depend on `ff-workload`, so
/// the registry itself cannot name them without a cycle.
fn full_registry() -> Vec<Box<dyn Experiment>> {
    let mut all = registry();
    all.push(Box::new(ff_store::E15StoreSoak));
    all.push(Box::new(ff_net::E16NetSoak));
    all.push(Box::new(ff_net::E17ReactorSoak));
    all.push(Box::new(ff_bench::E18Combining));
    all.push(Box::new(ff_dst::E19Dst));
    all.push(Box::new(ff_dst::E20Recovery));
    all.push(Box::new(ff_bench::E21Substrates));
    all
}

fn find_any(id: &str) -> Option<Box<dyn Experiment>> {
    find(id)
        .or_else(|| {
            id.eq_ignore_ascii_case("e15")
                .then(|| Box::new(ff_store::E15StoreSoak) as Box<dyn Experiment>)
        })
        .or_else(|| {
            id.eq_ignore_ascii_case("e16")
                .then(|| Box::new(ff_net::E16NetSoak) as Box<dyn Experiment>)
        })
        .or_else(|| {
            id.eq_ignore_ascii_case("e17")
                .then(|| Box::new(ff_net::E17ReactorSoak) as Box<dyn Experiment>)
        })
        .or_else(|| {
            id.eq_ignore_ascii_case("e18")
                .then(|| Box::new(ff_bench::E18Combining) as Box<dyn Experiment>)
        })
        .or_else(|| {
            id.eq_ignore_ascii_case("e19")
                .then(|| Box::new(ff_dst::E19Dst) as Box<dyn Experiment>)
        })
        .or_else(|| {
            id.eq_ignore_ascii_case("e20")
                .then(|| Box::new(ff_dst::E20Recovery) as Box<dyn Experiment>)
        })
        .or_else(|| {
            id.eq_ignore_ascii_case("e21")
                .then(|| Box::new(ff_bench::E21Substrates) as Box<dyn Experiment>)
        })
}

/// A fixed exhaustive scan (cascade, f = 1 faulty of 2 objects, n = 3
/// processes, unbounded overriding faults) timed to calibrate explorer
/// throughput on this machine — the denominator that makes wall times
/// comparable across hosts.
fn explorer_calibration() -> JsonValue {
    use ff_consensus::cascades;
    use ff_sim::{explore_parallel, ExplorerConfig, FaultPlan, Heap, SimState};
    use ff_spec::{Bound, Input};

    let inputs: Vec<Input> = (0..3).map(|i| Input(100 + i)).collect();
    let plan = FaultPlan::overriding(1, Bound::Unbounded);
    let state = SimState::new(cascades(&inputs, 1), Heap::new(2, 0), plan);
    let config = ExplorerConfig {
        threads: ff_sim::default_threads(),
        ..ExplorerConfig::default()
    };
    let start = Instant::now();
    let report = explore_parallel(state, config);
    let secs = start.elapsed().as_secs_f64();
    let states = report.states_expanded;
    JsonValue::Object(vec![
        (
            "scenario".into(),
            JsonValue::String("cascade f=1 n=3 overriding unbounded".into()),
        ),
        ("threads".into(), JsonValue::Number(config.threads as f64)),
        ("states_expanded".into(), JsonValue::Number(states as f64)),
        ("wall_secs".into(), JsonValue::Number(secs)),
        (
            "states_per_sec".into(),
            JsonValue::Number(if secs > 0.0 {
                states as f64 / secs
            } else {
                0.0
            }),
        ),
        ("verified".into(), JsonValue::Bool(report.verified())),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut json_out_path: Option<String> = None;
    let mut selectors: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }));
            }
            "--json-out" => {
                json_out_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json-out requires a path");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    });
                // The experiments resolve their worker count through
                // ff_sim::default_threads(), which reads this variable.
                std::env::set_var("FF_EXPLORER_THREADS", n.to_string());
            }
            other => selectors.push(other.to_string()),
        }
    }

    if selectors.iter().any(|s| s == "list") {
        for e in full_registry() {
            println!("{:4}  {}", e.id(), e.title());
        }
        return;
    }

    let experiments: Vec<Box<dyn Experiment>> =
        if selectors.is_empty() || selectors.iter().any(|s| s == "all") {
            full_registry()
        } else {
            selectors
                .iter()
                .map(|s| {
                    find_any(s).unwrap_or_else(|| {
                        eprintln!("unknown experiment id: {s} (try `report list`)");
                        std::process::exit(2);
                    })
                })
                .collect()
        };

    let mut results: Vec<ExperimentResult> = Vec::new();
    let mut wall_secs: Vec<f64> = Vec::new();
    let mut all_pass = true;
    for e in experiments {
        eprintln!("running {} …", e.id());
        let start = Instant::now();
        let result = e.run();
        wall_secs.push(start.elapsed().as_secs_f64());
        println!("{}", result.render());
        all_pass &= result.pass;
        results.push(result);
    }

    println!(
        "\n==== {} experiment(s): {} ====",
        results.len(),
        if all_pass {
            "ALL PASS"
        } else {
            "FAILURES PRESENT"
        }
    );

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&results)).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = json_out_path {
        eprintln!("calibrating explorer throughput …");
        let summary = JsonValue::Object(vec![
            (
                "experiments".into(),
                JsonValue::Array(
                    results
                        .iter()
                        .zip(&wall_secs)
                        .map(|(r, secs)| {
                            JsonValue::Object(vec![
                                ("id".into(), JsonValue::String(r.id.clone())),
                                ("title".into(), JsonValue::String(r.title.clone())),
                                ("pass".into(), JsonValue::Bool(r.pass)),
                                ("wall_secs".into(), JsonValue::Number(*secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("all_pass".into(), JsonValue::Bool(all_pass)),
            (
                "total_wall_secs".into(),
                JsonValue::Number(wall_secs.iter().sum()),
            ),
            ("explorer_calibration".into(), explorer_calibration()),
        ]);
        std::fs::write(&path, summary.render()).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if !all_pass {
        std::process::exit(1);
    }
}
