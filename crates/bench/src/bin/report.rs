//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ff-bench --bin report            # all experiments
//! cargo run --release -p ff-bench --bin report -- e3      # one experiment
//! cargo run --release -p ff-bench --bin report -- list    # list ids
//! cargo run --release -p ff-bench --bin report -- all --json out.json
//! cargo run --release -p ff-bench --bin report -- all --threads 4
//! ```
//!
//! `--threads N` sets the explorer worker count for every exhaustive
//! scan (equivalent to `FF_EXPLORER_THREADS=N`; default: all cores).

use ff_workload::{find, registry, to_json, ExperimentResult};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut selectors: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    });
                // The experiments resolve their worker count through
                // ff_sim::default_threads(), which reads this variable.
                std::env::set_var("FF_EXPLORER_THREADS", n.to_string());
            }
            other => selectors.push(other.to_string()),
        }
    }

    if selectors.iter().any(|s| s == "list") {
        for e in registry() {
            println!("{:4}  {}", e.id(), e.title());
        }
        return;
    }

    let experiments: Vec<Box<dyn ff_workload::Experiment>> =
        if selectors.is_empty() || selectors.iter().any(|s| s == "all") {
            registry()
        } else {
            selectors
                .iter()
                .map(|s| {
                    find(s).unwrap_or_else(|| {
                        eprintln!("unknown experiment id: {s} (try `report list`)");
                        std::process::exit(2);
                    })
                })
                .collect()
        };

    let mut results: Vec<ExperimentResult> = Vec::new();
    let mut all_pass = true;
    for e in experiments {
        eprintln!("running {} …", e.id());
        let result = e.run();
        println!("{}", result.render());
        all_pass &= result.pass;
        results.push(result);
    }

    println!(
        "\n==== {} experiment(s): {} ====",
        results.len(),
        if all_pass {
            "ALL PASS"
        } else {
            "FAILURES PRESENT"
        }
    );

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&results)).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if !all_pass {
        std::process::exit(1);
    }
}
