//! Print concrete counterexample executions for the paper's lower bounds.
//!
//! ```text
//! cargo run --release -p ff-bench --bin witness -- thm18 [n]   # shortest violating execution
//! cargo run --release -p ff-bench --bin witness -- thm19 [f]   # covering-attack narrative
//! ```

use ff_adversary::{covering_attack, render_witness};
use ff_consensus::{one_shots, staged_machines};
use ff_sim::{explore_bfs, ExplorerConfig, FaultPlan, Heap, SimState};
use ff_spec::{Bound, Input};

fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(|i| Input(10 * (i + 1))).collect()
}

fn thm18(n: usize) {
    assert!(
        n >= 3,
        "Theorem 18 needs n > 2 (got {n}); n = 2 is safe by Theorem 4"
    );
    println!(
        "Theorem 18 witness: one unboundedly-faulty CAS object, {n} processes, one-shot protocol.\n"
    );
    let plan = FaultPlan::overriding(1, Bound::Unbounded);
    let state = SimState::new(one_shots(&inputs(n)), Heap::new(1, 0), plan.clone());
    let report = explore_bfs(state, ExplorerConfig::default());
    match report.violation {
        Some(w) => {
            println!(
                "shortest violating execution ({} steps, found after {} states):\n",
                w.choices.len(),
                report.states_expanded
            );
            println!(
                "{}",
                render_witness(&w, one_shots(&inputs(n)), Heap::new(1, 0), &plan)
            );
        }
        None => println!("no violation found (unexpected — check the configuration)"),
    }
}

fn thm19(f: usize) {
    let n = f + 2;
    println!(
        "Theorem 19 witness: the covering attack on the staged protocol — \
         f = {f} objects, t = 1 fault each, n = {n} processes.\n"
    );
    let report = covering_attack(staged_machines(&inputs(n), f as u64, 1), f);
    println!("schedule narrative:");
    println!("  1. p0 runs alone and decides {:?}", report.first_decision);
    for (i, (obj, pid)) in report.covered.iter().zip(&report.halted).enumerate() {
        println!(
            "  {}. {pid} runs alone until its first CAS on uncovered {obj}; that CAS \
             suffers an overriding fault (burying p0's footprint) and {pid} is halted",
            i + 2
        );
    }
    println!(
        "  {}. p{} runs alone — unable to tell p0 ever ran — and decides {:?}",
        report.covered.len() + 2,
        n - 1,
        report.last_decision
    );
    println!(
        "\ntotal steps: {}; objects covered: {}; consistency violated: {}",
        report.steps,
        report.covered.len(),
        report.violated()
    );
    if !report.violated() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("thm18") => {
            let n = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
            thm18(n);
        }
        Some("thm19") => {
            let f = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
            thm19(f);
        }
        _ => {
            eprintln!("usage: witness <thm18 [n] | thm19 [f]>");
            std::process::exit(2);
        }
    }
}
