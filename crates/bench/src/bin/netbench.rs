//! Closed-loop benchmark of the network path: `NetClient`s over
//! localhost TCP against the reactor `NetServer`.
//!
//! ```text
//! cargo run --release -p ff-bench --bin netbench -- \
//!     --connections 1000 --shards 4 --secs 5 --batch 8
//! cargo run --release -p ff-bench --bin netbench -- --sweep
//! ```
//!
//! Two arms, mirroring the store soak:
//!
//! * **robust** — measured arm: ops/s and p50/p95/p99 over localhost,
//!   faults firing at `--fault-rate`. Must stay consistent; the
//!   process exits 1 if any shard diverges or any client errors.
//! * **naive** — witness arm (skip with `--skip-naive`): short runs at
//!   a fault rate of at least 0.2, retried over seeds until flagged —
//!   a divergence error frame at a client or a failed post-drain
//!   verify. Exits 1 if it is *never* flagged.
//!
//! The robust arm is driven **multiplexed**: a handful of driver
//! threads each own a slice of the connection fleet and keep exactly
//! one BATCH frame in flight per connection via [`NetClient::send`] /
//! [`NetClient::collect`] — send on every lane, then collect on every
//! lane. That is how a 1-core box loads the reactor with thousands of
//! connections; a thread per connection stopped being an option the
//! moment `--connections` grew a third digit. The witness arm keeps
//! the thread-per-client [`drive_clients`] loop (clamped to at most 4
//! connections) so its divergence observation still flows through the
//! plain [`Kv`] path.
//!
//! `--sweep` replaces the single robust run with the connection-scaling
//! trajectory 100 → 1,000 → 10,000. Connections the OS refuses (fd
//! limits at the top point) are reported as `achieved_connections`, not
//! treated as failure. Every report embeds the retired
//! thread-per-connection baseline (3 connections, ~305k ops/s, p99
//! ≈ 262µs) so the JSON carries its own comparison.
//!
//! The full report lands in `BENCH_net.json` (`--json-out` overrides).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ff_net::client::response_error;
use ff_net::wire::{Request, Response};
use ff_net::{NetClient, NetServer, ServerConfig};
use ff_store::{
    drive_clients, Backend, DurabilityConfig, KvOp, MetricsSnapshot, Store, StoreConfig,
    StoreError, StoreMetrics, WorkloadMix, KV_MAX,
};
use ff_workload::JsonValue;

/// The retired thread-per-connection server's best measured run (3
/// connections, `drive_clients`, batch 8, 1-core CI box) — the bar the
/// reactor has to clear while holding 100–10,000 connections.
///
/// **Historical**: that server was deleted when the reactor landed, so
/// this number can never be regenerated — the JSON marks it
/// `"historical": true` so downstream tooling doesn't mistake it for a
/// measured arm of the current run.
struct Baseline {
    connections: usize,
    ops_per_sec: f64,
    p99_us: f64,
}

const BASELINE: Baseline = Baseline {
    connections: 3,
    ops_per_sec: 305_000.0,
    p99_us: 262.0,
};

impl Baseline {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "driver".into(),
                JsonValue::String("thread-per-connection".into()),
            ),
            ("historical".into(), JsonValue::Bool(true)),
            (
                "connections".into(),
                JsonValue::Number(self.connections as f64),
            ),
            ("ops_per_sec".into(), JsonValue::Number(self.ops_per_sec)),
            ("p99_us".into(), JsonValue::Number(self.p99_us)),
        ])
    }
}

/// The `--sweep` trajectory: two orders of magnitude past the old
/// server's practical ceiling.
const SWEEP_POINTS: [usize; 3] = [100, 1_000, 10_000];

struct BenchConfig {
    backend: Backend,
    connections: usize,
    shards: usize,
    secs: f64,
    batch: usize,
    read_pct: u32,
    keyspace: u32,
    fault_rate: f64,
    checkpoint_interval: usize,
    seed: u64,
    loops: usize,
    replica_budget: usize,
    drivers: usize,
    combining: bool,
    sweep: bool,
    skip_naive: bool,
    data_dir: Option<String>,
    group_commit: usize,
    recover: bool,
    json_out: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            backend: Backend::robust(),
            connections: 4,
            shards: 4,
            secs: 3.0,
            batch: 8,
            read_pct: 50,
            keyspace: 1024,
            fault_rate: 0.2,
            checkpoint_interval: 64,
            seed: 0xBE7,
            loops: 0,
            // The bench default keeps every connection on the per-loop
            // combiner replicas: at bench scale an exclusive replica
            // per connection would put replica count — not the network
            // path — on the measured critical path.
            replica_budget: 0,
            drivers: 0,
            combining: false,
            sweep: false,
            skip_naive: false,
            data_dir: None,
            group_commit: DurabilityConfig::default().group_commit,
            recover: false,
            json_out: "BENCH_net.json".to_string(),
        }
    }
}

struct ArmReport {
    backend: Backend,
    snapshot: MetricsSnapshot,
    ops_served: u64,
    connections_requested: usize,
    connections_achieved: usize,
    client_errors: Vec<String>,
    divergence_errors: usize,
    verify_consistent: bool,
    diverged_shards: Vec<usize>,
    shutdown_errors: Vec<String>,
}

impl ArmReport {
    fn flagged(&self) -> bool {
        self.divergence_errors > 0 || !self.verify_consistent
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "backend".into(),
                JsonValue::String(self.backend.name().into()),
            ),
            (
                "connections".into(),
                JsonValue::Number(self.connections_requested as f64),
            ),
            (
                "achieved_connections".into(),
                JsonValue::Number(self.connections_achieved as f64),
            ),
            (
                "ops_served".into(),
                JsonValue::Number(self.ops_served as f64),
            ),
            (
                "ops_per_sec".into(),
                JsonValue::Number(self.snapshot.total_ops_per_sec()),
            ),
            (
                "speedup_vs_baseline".into(),
                JsonValue::Number(self.snapshot.total_ops_per_sec() / BASELINE.ops_per_sec),
            ),
            ("latency".into(), self.snapshot.to_json()),
            (
                "client_errors".into(),
                JsonValue::Array(
                    self.client_errors
                        .iter()
                        .map(|e| JsonValue::String(e.clone()))
                        .collect(),
                ),
            ),
            (
                "divergence_errors".into(),
                JsonValue::Number(self.divergence_errors as f64),
            ),
            (
                "verify_consistent".into(),
                JsonValue::Bool(self.verify_consistent),
            ),
            (
                "diverged_shards".into(),
                JsonValue::Array(
                    self.diverged_shards
                        .iter()
                        .map(|&s| JsonValue::Number(s as f64))
                        .collect(),
                ),
            ),
            (
                "shutdown_errors".into(),
                JsonValue::Array(
                    self.shutdown_errors
                        .iter()
                        .map(|e| JsonValue::String(e.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    fn print_summary(&self, label: &str) {
        // Frame round-trip percentiles: every class records the same
        // frame samples, so read whichever class saw the most ops (the
        // thread-per-client witness arm still lands in `batches`).
        let s = &self.snapshot;
        let busiest = [&s.reads, &s.writes, &s.deletes, &s.batches]
            .into_iter()
            .max_by_key(|c| c.ops)
            .expect("four candidate classes");
        println!(
            "{label}: {}/{} connection(s), {} ops served, {:.0} ops/sec \
             (×{:.2} vs thread-per-connection baseline), \
             p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs, consistent: {}",
            self.connections_achieved,
            self.connections_requested,
            self.ops_served,
            s.total_ops_per_sec(),
            s.total_ops_per_sec() / BASELINE.ops_per_sec,
            busiest.p50_ns as f64 / 1000.0,
            busiest.p95_ns as f64 / 1000.0,
            busiest.p99_ns as f64 / 1000.0,
            self.verify_consistent,
        );
    }
}

// ---------------------------------------------------------------------------
// Multiplexed driver
// ---------------------------------------------------------------------------

/// SplitMix64 — the same generator the soak workers use, so the two
/// drivers issue statistically identical workloads.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mirrors the soak's operation mix: `read_pct` gets, the remainder
/// split 2:1 between puts and dels.
fn random_op(rng: &mut u64, keyspace: u32, read_pct: u32) -> KvOp {
    let r = mix(rng);
    let key = (r >> 32) as u32 % keyspace;
    let dice = (r % 100) as u32;
    if dice < read_pct {
        KvOp::Get(key)
    } else if dice < read_pct + (100 - read_pct) * 2 / 3 {
        KvOp::Put(key, (r as u32) & KV_MAX)
    } else {
        KvOp::Del(key)
    }
}

/// One driven connection: its client, its private workload stream, and
/// the first error that retired it (errors are sticky, like the soak's
/// workers — hammering a diverged shard teaches nothing).
struct Lane {
    client: NetClient,
    rng: u64,
    error: Option<StoreError>,
}

struct MuxOutcome {
    clients: Vec<NetClient>,
    errors: Vec<StoreError>,
}

/// Drive `clients` closed-loop until `deadline` from `drivers` threads,
/// each cycling send-on-every-lane → collect-on-every-lane so every
/// connection keeps exactly one BATCH frame in flight.
///
/// Latency is the full send→collect round trip, attributed **at
/// collect time to every operation class the frame carried** — the
/// driver knows what it put in each frame, so GETs land in `reads`,
/// PUTs in `writes`, DELs in `deletes`, each class getting the frame's
/// round trip as its batched-call sample (per-op latency inside one
/// frame is not independently observable). Op throughput is accounted
/// per class too, so `metrics.batches` intentionally stays empty for
/// this driver: recording the same operations there as well would
/// double-count them in `total_ops_per_sec`.
fn drive_multiplexed(
    clients: Vec<NetClient>,
    mix_cfg: &WorkloadMix,
    deadline: Instant,
    metrics: &StoreMetrics,
    drivers: usize,
) -> MuxOutcome {
    let drivers = drivers.clamp(1, clients.len().max(1));
    let mut groups: Vec<Vec<Lane>> = (0..drivers).map(|_| Vec::new()).collect();
    for (i, client) in clients.into_iter().enumerate() {
        groups[i % drivers].push(Lane {
            client,
            rng: mix_cfg.seed ^ (i as u64) << 32,
            error: None,
        });
    }
    let batch = mix_cfg.batch.max(1);
    let keyspace = mix_cfg.keyspace.max(1);
    let read_pct = mix_cfg.read_pct;

    let groups: Vec<Vec<Lane>> = std::thread::scope(|scope| {
        let workers: Vec<_> = groups
            .into_iter()
            .map(|mut lanes| {
                let metrics = &*metrics;
                scope.spawn(move || {
                    while Instant::now() < deadline {
                        // Send phase: one BATCH frame per live lane.
                        let mut round = Vec::with_capacity(lanes.len());
                        for (li, lane) in lanes.iter_mut().enumerate() {
                            if lane.error.is_some() {
                                continue;
                            }
                            let ops: Vec<KvOp> = (0..batch)
                                .map(|_| random_op(&mut lane.rng, keyspace, read_pct))
                                .collect();
                            let mut classes = [0u64; 3];
                            for op in &ops {
                                match op {
                                    KvOp::Get(_) => classes[0] += 1,
                                    KvOp::Put(..) => classes[1] += 1,
                                    KvOp::Del(_) => classes[2] += 1,
                                }
                            }
                            let start = Instant::now();
                            match lane.client.send(&[Request::Batch(ops)]) {
                                Ok(ticket) => round.push((li, ticket, start, classes)),
                                Err(e) => lane.error = Some(e),
                            }
                        }
                        if round.is_empty() {
                            break; // every lane is dead
                        }
                        // Collect phase: redeem in send order.
                        for (li, ticket, start, classes) in round {
                            let lane = &mut lanes[li];
                            match lane.client.collect(ticket) {
                                Ok(mut resps) => match resps.pop() {
                                    Some(Response::Batch(values)) if values.len() == batch => {
                                        let nanos = start.elapsed().as_nanos() as u64;
                                        let [gets, puts, dels] = classes;
                                        if gets > 0 {
                                            metrics.reads.record_many(nanos, gets);
                                        }
                                        if puts > 0 {
                                            metrics.writes.record_many(nanos, puts);
                                        }
                                        if dels > 0 {
                                            metrics.deletes.record_many(nanos, dels);
                                        }
                                    }
                                    Some(Response::Batch(values)) => {
                                        lane.error = Some(StoreError::Protocol(format!(
                                            "batch of {batch} ops answered with {} values",
                                            values.len()
                                        )));
                                    }
                                    Some(other) => lane.error = Some(response_error(other)),
                                    None => unreachable!("one frame per ticket"),
                                },
                                Err(e) => lane.error = Some(e),
                            }
                        }
                    }
                    lanes
                })
            })
            .collect();
        workers.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut clients = Vec::new();
    let mut errors = Vec::new();
    for lane in groups.into_iter().flatten() {
        clients.push(lane.client);
        errors.extend(lane.error);
    }
    MuxOutcome { clients, errors }
}

/// Socket timeout for the measured fleet. At the top of the sweep a
/// closed-loop round trip is seconds, not microseconds — the server
/// scans every connection per tick — so the default 10 s client
/// timeout would misreport tail latency as an I/O error.
const FLEET_TIMEOUT: Duration = Duration::from_secs(60);

/// The soft fd limit, from `/proc/self/limits` (None off Linux — then
/// the only guard is the connect loop's own failure handling).
fn fd_budget() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Connect up to `want` clients, tolerating the OS running out of file
/// descriptors near the top of the sweep: the achieved fleet is driven
/// and reported instead of aborting the run.
///
/// Client and server share one process here, so every connection costs
/// **two** descriptors. Exhausting the table is asymmetric: the
/// client-side `connect` still succeeds through the listener backlog
/// while the server-side `accept` fails, leaving lanes that connected
/// but will never be served. Capping against the soft limit up front
/// keeps the whole achieved fleet answerable.
fn connect_fleet(addr: SocketAddr, want: usize) -> Vec<NetClient> {
    let want = match fd_budget() {
        Some(budget) => {
            let cap = budget.saturating_sub(256) / 2;
            if cap < want {
                eprintln!(
                    "netbench: fd limit {budget} caps the fleet at {cap} of {want} \
                     requested connection(s)"
                );
            }
            want.min(cap.max(1))
        }
        None => want,
    };
    let mut clients: Vec<NetClient> = Vec::with_capacity(want);
    while clients.len() < want {
        let mut attempts = 0;
        match loop {
            match NetClient::connect_with_timeout(addr, FLEET_TIMEOUT) {
                Ok(c) => break Some(c),
                Err(e) => {
                    attempts += 1;
                    if attempts >= 5 {
                        eprintln!(
                            "netbench: connected {}/{want} ({e}); driving the achieved fleet",
                            clients.len()
                        );
                        break None;
                    }
                    // Transient refusals (accept backlog) deserve a
                    // beat; fd exhaustion will fail all 5 and fall out.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        } {
            Some(c) => clients.push(c),
            None => break,
        }
    }
    clients
}

/// One full arm: store + reactor server + closed-loop clients + drain +
/// verify over the server's retired replicas (exclusive leases and
/// loop combiners alike).
fn run_arm(
    cfg: &BenchConfig,
    backend: Backend,
    fault_rate: f64,
    secs: f64,
    seed: u64,
    connections: usize,
    multiplexed: bool,
) -> ArmReport {
    let mut builder = StoreConfig::builder()
        .shards(cfg.shards)
        .backend(backend.clone())
        .fault_rate(if backend.injects_faults() {
            fault_rate
        } else {
            0.0
        })
        .rotate_kinds(backend.injects_faults())
        .checkpoint_interval(cfg.checkpoint_interval)
        .combining(cfg.combining)
        .seed(seed);
    if let Some(base) = &cfg.data_dir {
        // Arms run sequentially but must not replay each other's logs:
        // every (backend, connections) arm gets its own directory, so a
        // later --recover run finds exactly its own history.
        builder = builder
            .data_dir(format!("{base}/{}-c{}", backend.name(), connections))
            .group_commit(cfg.group_commit);
    }
    let store_config = builder.build().unwrap_or_else(|e| {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    });
    let store = if cfg.recover {
        let (store, report) = Store::recover(store_config).unwrap_or_else(|e| {
            eprintln!("RECOVERY REFUSED: {e}");
            std::process::exit(1);
        });
        eprintln!("{}", report.render());
        Arc::new(store)
    } else {
        Arc::new(Store::new(store_config))
    };
    let server = NetServer::start(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: connections + 16,
            loops: cfg.loops,
            replica_budget: cfg.replica_budget,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to bind: {e}");
        std::process::exit(1);
    });
    let clients = connect_fleet(server.addr(), connections);
    if clients.is_empty() {
        eprintln!("no connection could be established");
        std::process::exit(1);
    }
    let achieved = clients.len();

    let metrics = StoreMetrics::default();
    let mix_cfg = WorkloadMix {
        read_pct: cfg.read_pct,
        keyspace: cfg.keyspace,
        seed,
        batch: cfg.batch,
    };
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let (driven_clients, errors) = if multiplexed {
        let drivers = if cfg.drivers > 0 {
            cfg.drivers
        } else {
            achieved.clamp(1, 4)
        };
        let outcome = drive_multiplexed(clients, &mix_cfg, deadline, &metrics, drivers);
        (outcome.clients, outcome.errors)
    } else {
        let outcome = drive_clients(clients, &mix_cfg, deadline, &metrics, || {});
        (outcome.clients, outcome.errors)
    };
    let elapsed = started.elapsed().as_secs_f64();
    let divergence_errors = errors
        .iter()
        .filter(|e| matches!(e, StoreError::Divergence { .. }))
        .count();
    let client_errors: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
    for e in &errors {
        if !matches!(e, StoreError::Divergence { .. }) {
            eprintln!("client error: {e}");
        }
    }
    drop(driven_clients);
    let mut report = server.shutdown();
    for e in &report.shutdown_errors {
        eprintln!("shutdown error: {e}");
    }
    let verify = store.verify(&mut report.clients);
    ArmReport {
        backend,
        snapshot: metrics
            .snapshot(elapsed, store.shard_faults())
            .with_combining(store.combine_snapshot())
            .with_durability(store.durability_snapshot()),
        ops_served: report.ops_served,
        connections_requested: connections,
        connections_achieved: achieved,
        client_errors,
        divergence_errors,
        verify_consistent: verify.all_consistent(),
        diverged_shards: verify.diverged_shards(),
        shutdown_errors: report
            .shutdown_errors
            .iter()
            .map(|e| e.to_string())
            .collect(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: netbench [--connections N] [--shards N] [--secs S] [--batch N]\n\
         \x20              [--read-pct P] [--keyspace N] [--fault-rate R]\n\
         \x20              [--checkpoint-interval N] [--seed N] [--loops N]\n\
         \x20              [--replica-budget N] [--drivers N] [--combining]\n\
         \x20              [--backend NAME] [--sweep] [--skip-naive] [--json-out PATH]\n\
         \x20              [--data-dir DIR] [--group-commit N] [--recover]"
    );
    std::process::exit(2);
}

/// Parse a seed in decimal or `0x` hex (matching the `dst` CLI).
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut cfg = BenchConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--backend" => {
                cfg.backend = value("--backend").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                })
            }
            "--connections" => {
                cfg.connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--shards" => cfg.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--secs" => cfg.secs = value("--secs").parse().unwrap_or_else(|_| usage()),
            "--batch" => cfg.batch = value("--batch").parse().unwrap_or_else(|_| usage()),
            "--read-pct" => cfg.read_pct = value("--read-pct").parse().unwrap_or_else(|_| usage()),
            "--keyspace" => cfg.keyspace = value("--keyspace").parse().unwrap_or_else(|_| usage()),
            "--fault-rate" => {
                cfg.fault_rate = value("--fault-rate").parse().unwrap_or_else(|_| usage())
            }
            "--checkpoint-interval" => {
                cfg.checkpoint_interval = value("--checkpoint-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => cfg.seed = parse_seed(&value("--seed")).unwrap_or_else(|| usage()),
            "--loops" => cfg.loops = value("--loops").parse().unwrap_or_else(|_| usage()),
            "--replica-budget" => {
                cfg.replica_budget = value("--replica-budget")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--drivers" => cfg.drivers = value("--drivers").parse().unwrap_or_else(|_| usage()),
            "--combining" => cfg.combining = true,
            "--sweep" => cfg.sweep = true,
            "--skip-naive" => cfg.skip_naive = true,
            "--data-dir" => cfg.data_dir = Some(value("--data-dir")),
            "--group-commit" => {
                cfg.group_commit = value("--group-commit").parse().unwrap_or_else(|_| usage())
            }
            "--recover" => cfg.recover = true,
            "--json-out" => cfg.json_out = value("--json-out"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    // The measured robust arm(s): one multiplexed run at --connections,
    // or the full scaling trajectory under --sweep.
    let points: Vec<usize> = if cfg.sweep {
        SWEEP_POINTS.to_vec()
    } else {
        vec![cfg.connections]
    };
    let mut robust_arms: Vec<ArmReport> = Vec::new();
    for &p in &points {
        eprintln!(
            "netbench: {} arm, {} connection(s) x {} shard(s) over localhost TCP, \
             {}s, batch {}, fault rate {} …",
            cfg.backend, p, cfg.shards, cfg.secs, cfg.batch, cfg.fault_rate
        );
        let arm = run_arm(
            &cfg,
            cfg.backend.clone(),
            cfg.fault_rate,
            cfg.secs,
            cfg.seed ^ (p as u64) << 8,
            p,
            true,
        );
        println!("{}", arm.snapshot.render_tables());
        arm.print_summary(&format!("{} arm", cfg.backend));
        robust_arms.push(arm);
    }
    // A measured arm on a substrate that is *expected* to corrupt state
    // (the naive witness) cannot be held to verify-consistency.
    let expect_consistent = cfg.backend.expected_consistent();
    let robust_ok = robust_arms.iter().all(|a| {
        (a.verify_consistent || !expect_consistent)
            && (a.client_errors.is_empty()
                || (!expect_consistent && a.client_errors.len() == a.divergence_errors))
            && a.shutdown_errors.is_empty()
    });

    // The witness arm: short bursts at a meaningful fault rate until
    // the naive backend is caught — the violation is existential, so
    // retry over seeds with a cap, like E15/E16. A handful of
    // thread-per-client connections keeps the observation on the plain
    // Kv path.
    let naive_rate = cfg.fault_rate.max(0.2);
    let naive_connections = cfg.connections.clamp(1, 4);
    let mut naive: Option<ArmReport> = None;
    let mut naive_attempts = 0u32;
    if !cfg.skip_naive {
        for attempt in 0..12u64 {
            naive_attempts += 1;
            let arm = run_arm(
                &cfg,
                Backend::naive(),
                naive_rate,
                (cfg.secs / 4.0).clamp(0.2, 1.0),
                cfg.seed ^ (attempt.wrapping_add(1) << 32),
                naive_connections,
                false,
            );
            let flagged = arm.flagged();
            naive = Some(arm);
            if flagged {
                break;
            }
        }
        let n = naive.as_ref().expect("at least one attempt ran");
        println!(
            "naive arm (fault rate {naive_rate}): flagged after {naive_attempts} attempt(s): {} \
             ({} divergence error(s) at clients, verify consistent: {})",
            n.flagged(),
            n.divergence_errors,
            n.verify_consistent
        );
    }

    let verdict = robust_ok && naive.as_ref().is_none_or(|n| n.flagged());

    let mut doc = vec![
        (
            "config".to_string(),
            JsonValue::Object(vec![
                (
                    "connections".into(),
                    JsonValue::Number(cfg.connections as f64),
                ),
                ("shards".into(), JsonValue::Number(cfg.shards as f64)),
                ("secs".into(), JsonValue::Number(cfg.secs)),
                ("batch".into(), JsonValue::Number(cfg.batch as f64)),
                ("read_pct".into(), JsonValue::Number(cfg.read_pct as f64)),
                ("keyspace".into(), JsonValue::Number(cfg.keyspace as f64)),
                ("fault_rate".into(), JsonValue::Number(cfg.fault_rate)),
                ("seed".into(), JsonValue::Number(cfg.seed as f64)),
                ("loops".into(), JsonValue::Number(cfg.loops as f64)),
                (
                    "replica_budget".into(),
                    JsonValue::Number(cfg.replica_budget as f64),
                ),
                ("combining".into(), JsonValue::Bool(cfg.combining)),
                ("sweep".into(), JsonValue::Bool(cfg.sweep)),
                (
                    "transport".into(),
                    JsonValue::String("tcp-localhost".into()),
                ),
                (
                    "driver".into(),
                    JsonValue::String("multiplexed-reactor".into()),
                ),
            ]),
        ),
        ("baseline".to_string(), BASELINE.to_json()),
    ];
    if cfg.sweep {
        doc.push((
            "sweep".to_string(),
            JsonValue::Array(robust_arms.iter().map(|a| a.to_json()).collect()),
        ));
    }
    // The headline robust entry: the largest completed sweep point, or
    // the single measured run.
    if let Some(headline) = robust_arms.last() {
        doc.push(("robust".to_string(), headline.to_json()));
    }
    if let Some(n) = &naive {
        doc.push(("naive".to_string(), n.to_json()));
        doc.push((
            "naive_attempts".to_string(),
            JsonValue::Number(naive_attempts as f64),
        ));
    }
    doc.push(("consistent_verdict".to_string(), JsonValue::Bool(verdict)));
    let json = JsonValue::Object(doc).render();
    std::fs::write(&cfg.json_out, json).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", cfg.json_out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", cfg.json_out);

    if !robust_ok {
        eprintln!("DIVERGENCE in the robust arm — the construction failed its envelope");
        std::process::exit(1);
    }
    if let Some(n) = &naive {
        if !n.flagged() {
            eprintln!("naive arm was never flagged — the witness did not reproduce");
            std::process::exit(1);
        }
    }
}
