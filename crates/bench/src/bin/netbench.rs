//! Closed-loop benchmark of the network path: `NetClient`s over
//! localhost TCP against a `NetServer`, same workload loop as `soak`.
//!
//! ```text
//! cargo run --release -p ff-bench --bin netbench -- \
//!     --connections 4 --shards 4 --secs 5 --batch 8
//! ```
//!
//! Two arms, mirroring the store soak:
//!
//! * **robust** — measured arm: ops/s and p50/p95/p99 over localhost,
//!   faults firing at `--fault-rate`. Must stay consistent; the
//!   process exits 1 if any shard diverges or any client errors.
//! * **naive** — witness arm (skip with `--skip-naive`): short runs at
//!   a fault rate of at least 0.2, retried over seeds until flagged —
//!   a divergence error frame at a client or a failed post-drain
//!   verify. Exits 1 if it is *never* flagged.
//!
//! The full report lands in `BENCH_net.json` (`--json-out` overrides).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ff_net::{NetClient, NetServer, ServerConfig};
use ff_store::{
    drive_clients, Backend, MetricsSnapshot, Store, StoreConfig, StoreError, StoreMetrics,
    WorkloadMix,
};
use ff_workload::JsonValue;

struct BenchConfig {
    connections: usize,
    shards: usize,
    secs: f64,
    batch: usize,
    read_pct: u32,
    keyspace: u32,
    fault_rate: f64,
    checkpoint_interval: usize,
    seed: u64,
    skip_naive: bool,
    json_out: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            connections: 4,
            shards: 4,
            secs: 3.0,
            batch: 8,
            read_pct: 50,
            keyspace: 1024,
            fault_rate: 0.2,
            checkpoint_interval: 64,
            seed: 0xBE7,
            skip_naive: false,
            json_out: "BENCH_net.json".to_string(),
        }
    }
}

struct ArmReport {
    backend: Backend,
    snapshot: MetricsSnapshot,
    ops_served: u64,
    client_errors: Vec<String>,
    divergence_errors: usize,
    verify_consistent: bool,
    diverged_shards: Vec<usize>,
}

impl ArmReport {
    fn flagged(&self) -> bool {
        self.divergence_errors > 0 || !self.verify_consistent
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "backend".into(),
                JsonValue::String(self.backend.label().into()),
            ),
            (
                "ops_served".into(),
                JsonValue::Number(self.ops_served as f64),
            ),
            (
                "ops_per_sec".into(),
                JsonValue::Number(self.snapshot.total_ops_per_sec()),
            ),
            ("latency".into(), self.snapshot.to_json()),
            (
                "client_errors".into(),
                JsonValue::Array(
                    self.client_errors
                        .iter()
                        .map(|e| JsonValue::String(e.clone()))
                        .collect(),
                ),
            ),
            (
                "divergence_errors".into(),
                JsonValue::Number(self.divergence_errors as f64),
            ),
            (
                "verify_consistent".into(),
                JsonValue::Bool(self.verify_consistent),
            ),
            (
                "diverged_shards".into(),
                JsonValue::Array(
                    self.diverged_shards
                        .iter()
                        .map(|&s| JsonValue::Number(s as f64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One full arm: store + TCP server + closed-loop clients + drain +
/// verify over the server's retired replicas.
fn run_arm(
    cfg: &BenchConfig,
    backend: Backend,
    fault_rate: f64,
    secs: f64,
    seed: u64,
) -> ArmReport {
    let store = Arc::new(Store::new(
        StoreConfig::builder()
            .shards(cfg.shards)
            .backend(backend)
            .fault_rate(if backend == Backend::Reliable {
                0.0
            } else {
                fault_rate
            })
            .rotate_kinds(backend != Backend::Reliable)
            .checkpoint_interval(cfg.checkpoint_interval)
            .seed(seed)
            .build()
            .unwrap_or_else(|e| {
                eprintln!("invalid configuration: {e}");
                std::process::exit(2);
            }),
    ));
    let server = NetServer::start(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: cfg.connections + 4,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to bind: {e}");
        std::process::exit(1);
    });
    let clients: Vec<NetClient> = (0..cfg.connections)
        .map(|_| {
            NetClient::connect(server.addr()).unwrap_or_else(|e| {
                eprintln!("failed to connect: {e}");
                std::process::exit(1);
            })
        })
        .collect();

    let metrics = StoreMetrics::default();
    let mix = WorkloadMix {
        read_pct: cfg.read_pct,
        keyspace: cfg.keyspace,
        seed,
        batch: cfg.batch,
    };
    let started = Instant::now();
    let outcome = drive_clients(
        clients,
        &mix,
        started + Duration::from_secs_f64(secs),
        &metrics,
        || {},
    );
    let elapsed = started.elapsed().as_secs_f64();
    let divergence_errors = outcome.divergence_errors();
    let client_errors: Vec<String> = outcome.errors.iter().map(|e| e.to_string()).collect();
    for e in &outcome.errors {
        if !matches!(e, StoreError::Divergence { .. }) {
            eprintln!("client error: {e}");
        }
    }
    drop(outcome.clients);
    let mut report = server.shutdown();
    let verify = store.verify(&mut report.clients);
    ArmReport {
        backend,
        snapshot: metrics.snapshot(elapsed, store.shard_faults()),
        ops_served: report.ops_served,
        client_errors,
        divergence_errors,
        verify_consistent: verify.all_consistent(),
        diverged_shards: verify.diverged_shards(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: netbench [--connections N] [--shards N] [--secs S] [--batch N]\n\
         \x20              [--read-pct P] [--keyspace N] [--fault-rate R]\n\
         \x20              [--checkpoint-interval N] [--seed N] [--skip-naive]\n\
         \x20              [--json-out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = BenchConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--connections" => {
                cfg.connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--shards" => cfg.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--secs" => cfg.secs = value("--secs").parse().unwrap_or_else(|_| usage()),
            "--batch" => cfg.batch = value("--batch").parse().unwrap_or_else(|_| usage()),
            "--read-pct" => cfg.read_pct = value("--read-pct").parse().unwrap_or_else(|_| usage()),
            "--keyspace" => cfg.keyspace = value("--keyspace").parse().unwrap_or_else(|_| usage()),
            "--fault-rate" => {
                cfg.fault_rate = value("--fault-rate").parse().unwrap_or_else(|_| usage())
            }
            "--checkpoint-interval" => {
                cfg.checkpoint_interval = value("--checkpoint-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => cfg.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--skip-naive" => cfg.skip_naive = true,
            "--json-out" => cfg.json_out = value("--json-out"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    eprintln!(
        "netbench: {} connection(s) x {} shard(s) over localhost TCP, {}s, \
         batch {}, fault rate {} …",
        cfg.connections, cfg.shards, cfg.secs, cfg.batch, cfg.fault_rate
    );
    let robust = run_arm(&cfg, Backend::Robust, cfg.fault_rate, cfg.secs, cfg.seed);
    println!("{}", robust.snapshot.render_tables());
    println!(
        "robust arm: {} ops served, {:.0} ops/sec, consistent: {}",
        robust.ops_served,
        robust.snapshot.total_ops_per_sec(),
        robust.verify_consistent
    );

    // The witness arm: short bursts at a meaningful fault rate until
    // the naive backend is caught — the violation is existential, so
    // retry over seeds with a cap, like E15/E16.
    let naive_rate = cfg.fault_rate.max(0.2);
    let mut naive: Option<ArmReport> = None;
    let mut naive_attempts = 0u32;
    if !cfg.skip_naive {
        for attempt in 0..12u64 {
            naive_attempts += 1;
            let arm = run_arm(
                &cfg,
                Backend::Naive,
                naive_rate,
                (cfg.secs / 4.0).clamp(0.2, 1.0),
                cfg.seed ^ (attempt.wrapping_add(1) << 32),
            );
            let flagged = arm.flagged();
            naive = Some(arm);
            if flagged {
                break;
            }
        }
        let n = naive.as_ref().expect("at least one attempt ran");
        println!(
            "naive arm (fault rate {naive_rate}): flagged after {naive_attempts} attempt(s): {} \
             ({} divergence error(s) at clients, verify consistent: {})",
            n.flagged(),
            n.divergence_errors,
            n.verify_consistent
        );
    }

    let verdict = robust.verify_consistent
        && robust.client_errors.is_empty()
        && naive.as_ref().is_none_or(|n| n.flagged());

    let mut doc = vec![
        (
            "config".to_string(),
            JsonValue::Object(vec![
                (
                    "connections".into(),
                    JsonValue::Number(cfg.connections as f64),
                ),
                ("shards".into(), JsonValue::Number(cfg.shards as f64)),
                ("secs".into(), JsonValue::Number(cfg.secs)),
                ("batch".into(), JsonValue::Number(cfg.batch as f64)),
                ("read_pct".into(), JsonValue::Number(cfg.read_pct as f64)),
                ("keyspace".into(), JsonValue::Number(cfg.keyspace as f64)),
                ("fault_rate".into(), JsonValue::Number(cfg.fault_rate)),
                ("seed".into(), JsonValue::Number(cfg.seed as f64)),
                (
                    "transport".into(),
                    JsonValue::String("tcp-localhost".into()),
                ),
            ]),
        ),
        ("robust".to_string(), robust.to_json()),
    ];
    if let Some(n) = &naive {
        doc.push(("naive".to_string(), n.to_json()));
        doc.push((
            "naive_attempts".to_string(),
            JsonValue::Number(naive_attempts as f64),
        ));
    }
    doc.push(("consistent_verdict".to_string(), JsonValue::Bool(verdict)));
    let json = JsonValue::Object(doc).render();
    std::fs::write(&cfg.json_out, json).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", cfg.json_out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", cfg.json_out);

    if !robust.verify_consistent || !robust.client_errors.is_empty() {
        eprintln!("DIVERGENCE in the robust arm — the construction failed its envelope");
        std::process::exit(1);
    }
    if let Some(n) = &naive {
        if !n.flagged() {
            eprintln!("naive arm was never flagged — the witness did not reproduce");
            std::process::exit(1);
        }
    }
}
