//! Closed-loop soak of the sharded store under live fault injection.
//!
//! ```text
//! cargo run --release -p ff-bench --bin soak -- \
//!     --threads 4 --shards 8 --secs 10 --fault-rate 0.2
//! ```
//!
//! Hammers an `ff-store` from N closed-loop workers for the given
//! duration, verifies that every replica of every shard converged,
//! prints the latency/throughput/fault tables, and writes the full
//! machine-readable report to `BENCH_store.json` (override with
//! `--json-out`). Exits nonzero if any shard diverged — which the
//! `--backend naive` arm exists to demonstrate.
//!
//! `--combining` routes every worker through the flat-combining shard
//! cores. `--ab` runs the same configuration twice in one process —
//! first uncombined, then combined — writes both arms into one JSON
//! document, and exits nonzero unless both arms verified consistent
//! *and* the combined arm was at least as fast; CI's combining smoke
//! is exactly this mode.
//!
//! `--data-dir DIR` turns on the per-shard write-ahead log; add
//! `--recover` to rebuild the store from the WAL files already in the
//! directory before soaking (CI kill-9s a durable soak and restarts it
//! exactly like this). `--durability-ab` runs in-memory then durable in
//! one process and exits nonzero if the durable arm drops below 0.7×
//! the in-memory throughput — the group-commit cost budget.

use ff_bench::{run_substrate_sweep, substrate_sweep_json, substrate_table, SubstrateArm};
use ff_store::{try_run_soak, DurabilityConfig, SoakConfig, SoakReport};
use ff_workload::JsonValue;

fn usage() -> ! {
    eprintln!(
        "usage: soak [--threads N] [--shards N] [--secs S] [--fault-rate R]\n\
         \x20           [--backend NAME] [--read-pct P]\n\
         \x20           [--substrates] (hierarchy sweep over every registered substrate)\n\
         \x20           [--keyspace N] [--checkpoint-interval N] [--seed N]\n\
         \x20           [--combining] [--ab] [--json-out PATH]\n\
         \x20           [--data-dir DIR] [--group-commit N] [--recover]\n\
         \x20           [--durability-ab]"
    );
    std::process::exit(2);
}

/// Parse a seed in decimal or `0x` hex (matching the `dst` CLI).
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut config = SoakConfig::default();
    let mut json_out: Option<String> = None;
    let mut ab = false;
    let mut durability_ab = false;
    let mut substrates = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--threads" => config.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--shards" => config.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--secs" => config.secs = value("--secs").parse().unwrap_or_else(|_| usage()),
            "--fault-rate" => {
                config.fault_rate = value("--fault-rate").parse().unwrap_or_else(|_| usage())
            }
            "--backend" => {
                config.backend = value("--backend").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                })
            }
            "--read-pct" => {
                config.read_pct = value("--read-pct").parse().unwrap_or_else(|_| usage())
            }
            "--keyspace" => {
                config.keyspace = value("--keyspace").parse().unwrap_or_else(|_| usage())
            }
            "--checkpoint-interval" => {
                config.checkpoint_interval = value("--checkpoint-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => config.seed = parse_seed(&value("--seed")).unwrap_or_else(|| usage()),
            "--combining" => config.combining = true,
            "--ab" => ab = true,
            "--substrates" => substrates = true,
            "--data-dir" => {
                config.durability.data_dir = Some(value("--data-dir").into());
            }
            "--group-commit" => {
                config.durability.group_commit =
                    value("--group-commit").parse().unwrap_or_else(|_| usage())
            }
            "--recover" => config.recover = true,
            "--durability-ab" => durability_ab = true,
            "--json-out" => json_out = Some(value("--json-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    if config.recover && !config.durability.enabled() {
        eprintln!("--recover needs --data-dir: there is nothing to recover from");
        usage();
    }
    if substrates {
        if ab || durability_ab || config.durability.enabled() {
            eprintln!("--substrates is its own mode; drop --ab/--durability-ab/--data-dir");
            usage();
        }
        run_substrates(
            config.secs,
            &json_out.unwrap_or_else(|| "BENCH_substrates.json".into()),
        );
        return;
    }
    let json_out = json_out.unwrap_or_else(|| "BENCH_store.json".into());
    if durability_ab {
        if ab {
            eprintln!("--ab and --durability-ab are separate modes; pick one");
            usage();
        }
        if !config.durability.enabled() {
            eprintln!("--durability-ab needs --data-dir for its durable arm");
            usage();
        }
        run_durability_ab(config, &json_out);
        return;
    }
    if ab {
        run_ab(config, &json_out);
        return;
    }

    let report = soak_arm(&config);
    write_json(&json_out, report.to_json());
    check_consistent(&report);
}

/// The hierarchy sweep: the same soak once per registered substrate,
/// one comparison table, one JSON document — and exit nonzero if any
/// substrate that promises consistency diverged (the CI backend-matrix
/// gate).
fn run_substrates(secs: f64, json_out: &str) {
    eprintln!(
        "substrate sweep: {} registered substrate(s), {secs}s each …",
        ff_store::substrate_names().len()
    );
    let arms = run_substrate_sweep(secs);
    println!("{}", substrate_table(&arms).render());
    for arm in &arms {
        println!("  {}: {}", arm.backend.name(), arm.backend.describe());
    }
    write_json(json_out, substrate_sweep_json(&arms));
    if !arms.iter().all(SubstrateArm::ok) {
        eprintln!("DIVERGENCE: a substrate that promises consistency did not verify");
        std::process::exit(1);
    }
}

fn soak_arm(config: &SoakConfig) -> SoakReport {
    eprintln!(
        "soaking: {} worker(s) x {} shard(s), {}s, backend {}, fault rate {}, combining {}, durable {}{} …",
        config.threads,
        config.shards,
        config.secs,
        config.backend.name(),
        config.fault_rate,
        config.combining,
        config.durability.enabled(),
        if config.recover { " (recovering)" } else { "" },
    );
    // A recovery refusal — replay divergence, torn config, I/O failure —
    // is this binary's exit-1 path: the CI smoke asserts a durable
    // restart either replays cleanly or fails loudly, never serves
    // guessed data.
    let report = try_run_soak(config).unwrap_or_else(|e| {
        eprintln!("SOAK REFUSED: {e}");
        std::process::exit(1);
    });
    println!("{}", report.render());
    report
}

/// The CI combining smoke: same configuration, uncombined then
/// combined, in one process — so the comparison shares a build, a
/// machine state and a warm page cache. Fails unless both arms verify
/// consistent and combining did not lose throughput.
fn run_ab(mut config: SoakConfig, json_out: &str) {
    config.combining = false;
    let uncombined = soak_arm(&config);
    config.combining = true;
    let combined = soak_arm(&config);

    let base = uncombined.metrics.total_ops_per_sec();
    let with = combined.metrics.total_ops_per_sec();
    let speedup = if base > 0.0 { with / base } else { 0.0 };
    println!("\nA/B: uncombined {base:.0} ops/sec, combined {with:.0} ops/sec (×{speedup:.2})");

    write_json(
        json_out,
        JsonValue::Object(vec![
            ("mode".into(), JsonValue::String("ab".into())),
            ("uncombined".into(), uncombined.to_json()),
            ("combined".into(), combined.to_json()),
            ("speedup".into(), JsonValue::Number(speedup)),
        ]),
    );

    check_consistent(&uncombined);
    check_consistent(&combined);
    if with < base {
        eprintln!("REGRESSION: combined arm slower than uncombined (×{speedup:.2})");
        std::process::exit(1);
    }
}

/// The durability cost budget: same configuration, purely in-memory
/// then with the WAL on, in one process. Fails unless both arms verify
/// consistent and the durable arm kept at least [`MIN_DURABLE_RATIO`]
/// of the in-memory throughput.
const MIN_DURABLE_RATIO: f64 = 0.7;

fn run_durability_ab(mut config: SoakConfig, json_out: &str) {
    let durability = config.durability.clone();
    config.durability = DurabilityConfig::default();
    config.recover = false;
    let memory = soak_arm(&config);
    config.durability = durability;
    let durable = soak_arm(&config);

    let base = memory.metrics.total_ops_per_sec();
    let with = durable.metrics.total_ops_per_sec();
    let ratio = if base > 0.0 { with / base } else { 0.0 };
    println!(
        "\nA/B: in-memory {base:.0} ops/sec, durable {with:.0} ops/sec (×{ratio:.2}, budget ≥{MIN_DURABLE_RATIO})"
    );

    write_json(
        json_out,
        JsonValue::Object(vec![
            ("mode".into(), JsonValue::String("durability-ab".into())),
            ("memory".into(), memory.to_json()),
            ("durable".into(), durable.to_json()),
            ("durable_ratio".into(), JsonValue::Number(ratio)),
            (
                "min_durable_ratio".into(),
                JsonValue::Number(MIN_DURABLE_RATIO),
            ),
        ]),
    );

    check_consistent(&memory);
    check_consistent(&durable);
    if ratio < MIN_DURABLE_RATIO {
        eprintln!(
            "REGRESSION: durable arm below the {MIN_DURABLE_RATIO}× throughput budget (×{ratio:.2})"
        );
        std::process::exit(1);
    }
}

fn write_json(path: &str, json: JsonValue) {
    std::fs::write(path, json.render()).unwrap_or_else(|e| {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path}");
}

fn check_consistent(report: &SoakReport) {
    if !report.consistent {
        eprintln!("DIVERGENCE: shards did not agree (expected only under --backend naive)");
        std::process::exit(1);
    }
}
