//! Closed-loop soak of the sharded store under live fault injection.
//!
//! ```text
//! cargo run --release -p ff-bench --bin soak -- \
//!     --threads 4 --shards 8 --secs 10 --fault-rate 0.2
//! ```
//!
//! Hammers an `ff-store` from N closed-loop workers for the given
//! duration, verifies that every replica of every shard converged,
//! prints the latency/throughput/fault tables, and writes the full
//! machine-readable report to `BENCH_store.json` (override with
//! `--json-out`). Exits nonzero if any shard diverged — which the
//! `--backend naive` arm exists to demonstrate.

use ff_store::{run_soak, Backend, SoakConfig};

fn usage() -> ! {
    eprintln!(
        "usage: soak [--threads N] [--shards N] [--secs S] [--fault-rate R]\n\
         \x20           [--backend reliable|robust|naive] [--read-pct P]\n\
         \x20           [--keyspace N] [--checkpoint-interval N] [--seed N]\n\
         \x20           [--json-out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = SoakConfig::default();
    let mut json_out = "BENCH_store.json".to_string();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--threads" => config.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--shards" => config.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--secs" => config.secs = value("--secs").parse().unwrap_or_else(|_| usage()),
            "--fault-rate" => {
                config.fault_rate = value("--fault-rate").parse().unwrap_or_else(|_| usage())
            }
            "--backend" => {
                config.backend = match value("--backend").as_str() {
                    "reliable" => Backend::Reliable,
                    "robust" => Backend::Robust,
                    "naive" => Backend::Naive,
                    other => {
                        eprintln!("unknown backend: {other}");
                        usage();
                    }
                }
            }
            "--read-pct" => {
                config.read_pct = value("--read-pct").parse().unwrap_or_else(|_| usage())
            }
            "--keyspace" => {
                config.keyspace = value("--keyspace").parse().unwrap_or_else(|_| usage())
            }
            "--checkpoint-interval" => {
                config.checkpoint_interval = value("--checkpoint-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => config.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--json-out" => json_out = value("--json-out"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    eprintln!(
        "soaking: {} worker(s) x {} shard(s), {}s, backend {}, fault rate {} …",
        config.threads,
        config.shards,
        config.secs,
        config.backend.label(),
        config.fault_rate
    );
    let report = run_soak(&config);
    println!("{}", report.render());

    std::fs::write(&json_out, report.to_json().render()).unwrap_or_else(|e| {
        eprintln!("failed to write {json_out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {json_out}");

    if !report.consistent {
        eprintln!("DIVERGENCE: shards did not agree (expected only under --backend naive)");
        std::process::exit(1);
    }
}
