//! Closed-loop soak of the sharded store under live fault injection.
//!
//! ```text
//! cargo run --release -p ff-bench --bin soak -- \
//!     --threads 4 --shards 8 --secs 10 --fault-rate 0.2
//! ```
//!
//! Hammers an `ff-store` from N closed-loop workers for the given
//! duration, verifies that every replica of every shard converged,
//! prints the latency/throughput/fault tables, and writes the full
//! machine-readable report to `BENCH_store.json` (override with
//! `--json-out`). Exits nonzero if any shard diverged — which the
//! `--backend naive` arm exists to demonstrate.
//!
//! `--combining` routes every worker through the flat-combining shard
//! cores. `--ab` runs the same configuration twice in one process —
//! first uncombined, then combined — writes both arms into one JSON
//! document, and exits nonzero unless both arms verified consistent
//! *and* the combined arm was at least as fast; CI's combining smoke
//! is exactly this mode.

use ff_store::{run_soak, Backend, SoakConfig, SoakReport};
use ff_workload::JsonValue;

fn usage() -> ! {
    eprintln!(
        "usage: soak [--threads N] [--shards N] [--secs S] [--fault-rate R]\n\
         \x20           [--backend reliable|robust|naive] [--read-pct P]\n\
         \x20           [--keyspace N] [--checkpoint-interval N] [--seed N]\n\
         \x20           [--combining] [--ab] [--json-out PATH]"
    );
    std::process::exit(2);
}

/// Parse a seed in decimal or `0x` hex (matching the `dst` CLI).
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut config = SoakConfig::default();
    let mut json_out = "BENCH_store.json".to_string();
    let mut ab = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--threads" => config.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--shards" => config.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--secs" => config.secs = value("--secs").parse().unwrap_or_else(|_| usage()),
            "--fault-rate" => {
                config.fault_rate = value("--fault-rate").parse().unwrap_or_else(|_| usage())
            }
            "--backend" => {
                config.backend = match value("--backend").as_str() {
                    "reliable" => Backend::Reliable,
                    "robust" => Backend::Robust,
                    "naive" => Backend::Naive,
                    other => {
                        eprintln!("unknown backend: {other}");
                        usage();
                    }
                }
            }
            "--read-pct" => {
                config.read_pct = value("--read-pct").parse().unwrap_or_else(|_| usage())
            }
            "--keyspace" => {
                config.keyspace = value("--keyspace").parse().unwrap_or_else(|_| usage())
            }
            "--checkpoint-interval" => {
                config.checkpoint_interval = value("--checkpoint-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => config.seed = parse_seed(&value("--seed")).unwrap_or_else(|| usage()),
            "--combining" => config.combining = true,
            "--ab" => ab = true,
            "--json-out" => json_out = value("--json-out"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    if ab {
        run_ab(config, &json_out);
        return;
    }

    let report = soak_arm(&config);
    write_json(&json_out, report.to_json());
    check_consistent(&report);
}

fn soak_arm(config: &SoakConfig) -> SoakReport {
    eprintln!(
        "soaking: {} worker(s) x {} shard(s), {}s, backend {}, fault rate {}, combining {} …",
        config.threads,
        config.shards,
        config.secs,
        config.backend.label(),
        config.fault_rate,
        config.combining,
    );
    let report = run_soak(config);
    println!("{}", report.render());
    report
}

/// The CI combining smoke: same configuration, uncombined then
/// combined, in one process — so the comparison shares a build, a
/// machine state and a warm page cache. Fails unless both arms verify
/// consistent and combining did not lose throughput.
fn run_ab(mut config: SoakConfig, json_out: &str) {
    config.combining = false;
    let uncombined = soak_arm(&config);
    config.combining = true;
    let combined = soak_arm(&config);

    let base = uncombined.metrics.total_ops_per_sec();
    let with = combined.metrics.total_ops_per_sec();
    let speedup = if base > 0.0 { with / base } else { 0.0 };
    println!("\nA/B: uncombined {base:.0} ops/sec, combined {with:.0} ops/sec (×{speedup:.2})");

    write_json(
        json_out,
        JsonValue::Object(vec![
            ("mode".into(), JsonValue::String("ab".into())),
            ("uncombined".into(), uncombined.to_json()),
            ("combined".into(), combined.to_json()),
            ("speedup".into(), JsonValue::Number(speedup)),
        ]),
    );

    check_consistent(&uncombined);
    check_consistent(&combined);
    if with < base {
        eprintln!("REGRESSION: combined arm slower than uncombined (×{speedup:.2})");
        std::process::exit(1);
    }
}

fn write_json(path: &str, json: JsonValue) {
    std::fs::write(path, json.render()).unwrap_or_else(|e| {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path}");
}

fn check_consistent(report: &SoakReport) {
    if !report.consistent {
        eprintln!("DIVERGENCE: shards did not agree (expected only under --backend naive)");
        std::process::exit(1);
    }
}
