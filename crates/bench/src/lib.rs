//! Experiments that need the whole stack at once.
//!
//! Most experiments live next to the layer they exercise (`ff-workload`
//! E1–E14, `ff-store` E15, `ff-net` E16/E17). E18 compares the
//! flat-combining shard cores against the uncombined submission path
//! *and* re-checks the combining model grid — store and simulator
//! together — so it lives here, in the one crate that depends on both.
//! E21 sweeps every registered consensus substrate through the same
//! soak — the hierarchy corollary (§5.2) as one measured table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ff_sim::{check_combining, combining_crash_grid, combining_grid, CombineModelConfig};
use ff_store::metrics::format_ns;
use ff_store::{all_backends, run_soak, Backend, SoakConfig, SoakReport};
use ff_workload::{Experiment, ExperimentResult, JsonValue, Table};

/// E18: flat-combining cores vs the uncombined path, plus the
/// exhaustive small-config model check of the combining protocol.
pub struct E18Combining;

impl Experiment for E18Combining {
    fn id(&self) -> &'static str {
        "e18"
    }

    fn title(&self) -> &'static str {
        "Flat-combining shard cores: A/B soak, read fast path, model grid"
    }

    fn run(&self) -> ExperimentResult {
        let mut grid = combining_grid();
        grid.extend(combining_crash_grid());
        run_e18(&grid, 0.6)
    }
}

/// The body of E18, parameterized so the unit test can run a trimmed
/// grid and shorter arms (`ff-sim` already exhausts the full grid in
/// its own tests; re-walking the 3-client configs under the debug
/// profile would dominate the suite for no new coverage).
fn run_e18(grid: &[CombineModelConfig], secs: f64) -> ExperimentResult {
    let mut notes = Vec::new();
    let mut pass = true;

    // Arm 1+2 — the same faulty soak, uncombined then combined. One
    // process, one machine state: the honest version of the comparison.
    let base_config = SoakConfig {
        threads: 3,
        shards: 4,
        secs,
        fault_rate: 0.2,
        checkpoint_interval: 16,
        ..SoakConfig::default()
    };
    let mut ab = Table::new(
        "combined vs uncombined soak (threads=3, shards=4, fault rate 0.2, mixed kinds)",
        &["path", "ops", "ops/sec", "combine passes", "consistent"],
    );
    let mut speedup = (0.0, 0.0);
    for combining in [false, true] {
        let report = run_soak(&SoakConfig {
            combining,
            ..base_config.clone()
        });
        let ops_per_sec = report.metrics.total_ops_per_sec();
        if combining {
            speedup.1 = ops_per_sec;
        } else {
            speedup.0 = ops_per_sec;
        }
        ab.push_row(&[
            if combining { "combined" } else { "uncombined" }.to_string(),
            report.metrics.total_ops().to_string(),
            format!("{ops_per_sec:.0}"),
            report
                .metrics
                .combining
                .as_ref()
                .map_or_else(|| "—".to_string(), |c| c.passes.to_string()),
            report.consistent.to_string(),
        ]);
        pass &= report.consistent;
    }
    if speedup.0 > 0.0 {
        notes.push(format!(
            "combined/uncombined throughput ratio: ×{:.2} (ratio is machine- and \
             profile-dependent; CI's release-mode `soak --ab` gate enforces ≥1)",
            speedup.1 / speedup.0
        ));
    }

    // Arm 3 — read-share sweep over the combined path: the wait-free
    // snapshot read should absorb nearly every GET, and the heavier the
    // read mix the more of the workload never touches the log.
    let mut sweep = Table::new(
        "combined path vs read share (threads=3, shards=4, fault rate 0.2)",
        &[
            "read %",
            "ops/sec",
            "fastpath hits",
            "fallbacks",
            "hit rate",
        ],
    );
    for read_pct in [50u32, 70, 95] {
        let report = run_soak(&SoakConfig {
            combining: true,
            read_pct,
            ..base_config.clone()
        });
        pass &= report.consistent;
        let c = report
            .metrics
            .combining
            .expect("combining soak must snapshot combiner counters");
        sweep.push_row(&[
            read_pct.to_string(),
            format!("{:.0}", report.metrics.total_ops_per_sec()),
            c.fastpath_hits.to_string(),
            c.fastpath_misses.to_string(),
            format!("{:.1}%", c.hit_rate() * 100.0),
        ]);
        if read_pct == 95 {
            // The acceptance bar: a read-heavy workload must be served
            // almost entirely by the wait-free path.
            if c.hit_rate() <= 0.9 {
                notes.push(format!(
                    "FAIL: 95%-GET arm fast-path hit rate {:.1}% ≤ 90%",
                    c.hit_rate() * 100.0
                ));
                pass = false;
            } else {
                notes.push(format!(
                    "95%-GET arm answered {:.1}% of reads wait-free",
                    c.hit_rate() * 100.0
                ));
            }
        }
    }

    // Arm 4 — the exhaustive model grid: no stale read past the decided
    // tail, no lost or duplicated op under combiner hand-off — nor
    // under adversarial combiner kills with the lease reclaim on —
    // across every interleaving of every small configuration.
    let mut model = Table::new(
        "combining model grid (exhaustive; stutters = tolerated cell faults, crashes = combiner kills)",
        &[
            "clients", "rounds", "stutters", "crashes", "lease", "states", "stale", "lost", "dup",
        ],
    );
    for cfg in grid {
        let report = check_combining(cfg);
        pass &= report.clean();
        model.push_row(&[
            cfg.clients.to_string(),
            cfg.rounds.to_string(),
            format!("{:?}", cfg.stutter_budget),
            cfg.crashes.to_string(),
            cfg.lease.to_string(),
            report.states.to_string(),
            report.stale_reads.to_string(),
            report.lost_ops.to_string(),
            report.duplicated_ops.to_string(),
        ]);
    }

    ExperimentResult {
        id: "e18".into(),
        title: E18Combining.title().into(),
        paper_ref: "flat combining over the robust universal construction (Sections 4–6)".into(),
        tables: vec![ab, sweep, model],
        notes,
        pass,
    }
}

/// The fault rate every fault-injecting arm of the hierarchy sweep
/// runs at — and that the acceptance bar (robust-composed arms end
/// `Store::verify`-consistent) is asserted at.
pub const SWEEP_FAULT_RATE: f64 = 0.2;

/// One substrate's measured row in the hierarchy sweep: the substrate's
/// declared identity next to how a whole store built on it actually
/// behaved under the standard soak.
pub struct SubstrateArm {
    /// The substrate this arm ran on.
    pub backend: Backend,
    /// The soak outcome (metrics, per-shard verdicts, consistency).
    pub report: SoakReport,
}

impl SubstrateArm {
    /// Observable (Definition 1) faults summed over every shard.
    pub fn observable_faults(&self) -> u64 {
        self.report
            .metrics
            .faults
            .iter()
            .map(|f| f.observable)
            .sum()
    }

    /// Did the arm honor its substrate's contract? Substrates that
    /// promise consistency must end `Store::verify`-consistent; the
    /// broken witness promises nothing, so either outcome honors it
    /// (its divergence is E10's business, not the sweep's).
    pub fn ok(&self) -> bool {
        self.report.consistent || !self.backend.expected_consistent()
    }
}

/// Run the hierarchy sweep: the same closed-loop soak once per
/// registered substrate — fault rate [`SWEEP_FAULT_RATE`] with kinds
/// rotated over each substrate's injected set, zero for substrates
/// that never inject — so the rows differ only in the substrate.
pub fn run_substrate_sweep(secs: f64) -> Vec<SubstrateArm> {
    all_backends()
        .into_iter()
        .map(|backend| {
            let report = run_soak(&SoakConfig {
                threads: 3,
                shards: 4,
                secs,
                fault_rate: if backend.injects_faults() {
                    SWEEP_FAULT_RATE
                } else {
                    0.0
                },
                checkpoint_interval: 16,
                backend: backend.clone(),
                ..SoakConfig::default()
            });
            SubstrateArm { backend, report }
        })
        .collect()
}

/// The `⊥`-free label for a substrate's consensus number: the class of
/// primitive the cells are built from.
fn cn_label(backend: &Backend) -> String {
    match backend.consensus_number() {
        None => "∞ (hw CAS)".into(),
        Some(n) => n.to_string(),
    }
}

/// `overriding+silent`-style label for a kind set.
fn kinds_label(kinds: &[ff_spec::FaultKind]) -> String {
    if kinds.is_empty() {
        return "—".into();
    }
    kinds
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join("+")
}

/// Render the sweep as one comparison table (the E21 table).
pub fn substrate_table(arms: &[SubstrateArm]) -> Table {
    let mut table = Table::new(
        format!(
            "substrate hierarchy sweep (threads=3, shards=4, fault rate {SWEEP_FAULT_RATE} on injecting substrates, kinds rotated)"
        ),
        &[
            "substrate",
            "cn",
            "tolerates",
            "ops/sec",
            "put p50",
            "put p99",
            "observable faults",
            "consistent",
            "contract",
        ],
    );
    for arm in arms {
        table.push_row(&[
            arm.backend.name().to_string(),
            cn_label(&arm.backend),
            kinds_label(arm.backend.tolerated_kinds()),
            format!("{:.0}", arm.report.metrics.total_ops_per_sec()),
            format_ns(arm.report.metrics.writes.p50_ns),
            format_ns(arm.report.metrics.writes.p99_ns),
            arm.observable_faults().to_string(),
            arm.report.consistent.to_string(),
            if arm.ok() { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    table
}

/// Serialize the sweep as the `BENCH_substrates.json` document: one
/// entry per substrate with its declared envelope and measured
/// throughput, latency percentiles, fault counts and survival verdict.
pub fn substrate_sweep_json(arms: &[SubstrateArm]) -> JsonValue {
    JsonValue::Object(vec![
        ("mode".into(), JsonValue::String("substrates".into())),
        ("fault_rate".into(), JsonValue::Number(SWEEP_FAULT_RATE)),
        (
            "substrates".into(),
            JsonValue::Array(
                arms.iter()
                    .map(|arm| {
                        JsonValue::Object(vec![
                            ("name".into(), JsonValue::String(arm.backend.name().into())),
                            (
                                "describe".into(),
                                JsonValue::String(arm.backend.describe().into()),
                            ),
                            (
                                "consensus_number".into(),
                                match arm.backend.consensus_number() {
                                    None => JsonValue::Null,
                                    Some(n) => JsonValue::Number(n as f64),
                                },
                            ),
                            (
                                "tolerates".into(),
                                JsonValue::Array(
                                    arm.backend
                                        .tolerated_kinds()
                                        .iter()
                                        .map(|k| JsonValue::String(k.to_string()))
                                        .collect(),
                                ),
                            ),
                            (
                                "injects_faults".into(),
                                JsonValue::Bool(arm.backend.injects_faults()),
                            ),
                            (
                                "expected_consistent".into(),
                                JsonValue::Bool(arm.backend.expected_consistent()),
                            ),
                            (
                                "observable_faults".into(),
                                JsonValue::Number(arm.observable_faults() as f64),
                            ),
                            ("consistent".into(), JsonValue::Bool(arm.report.consistent)),
                            ("contract_ok".into(), JsonValue::Bool(arm.ok())),
                            ("report".into(), arm.report.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// E21: the measured hierarchy sweep — every registered substrate
/// through the same faulty soak, one comparable table.
pub struct E21Substrates;

impl Experiment for E21Substrates {
    fn id(&self) -> &'static str {
        "e21"
    }

    fn title(&self) -> &'static str {
        "Consensus-substrate hierarchy sweep: same store, every substrate"
    }

    fn run(&self) -> ExperimentResult {
        run_e21(1.0)
    }
}

/// The body of E21, parameterized so the unit test can run short arms.
fn run_e21(secs: f64) -> ExperimentResult {
    let arms = run_substrate_sweep(secs);
    let mut notes: Vec<String> = arms
        .iter()
        .map(|a| format!("{}: {}", a.backend.name(), a.backend.describe()))
        .collect();
    let pass = arms.iter().all(SubstrateArm::ok);
    for arm in &arms {
        if !arm.ok() {
            notes.push(format!(
                "FAIL: substrate {} promised consistency and diverged",
                arm.backend.name()
            ));
        }
    }
    if let Some(naive) = arms.iter().find(|a| !a.backend.expected_consistent()) {
        notes.push(format!(
            "the broken witness ({}) {} in this window — its divergence proof is E10's \
             exhaustive check, not this sweep",
            naive.backend.name(),
            if naive.report.consistent {
                "happened to stay consistent"
            } else {
                "diverged, as the paper predicts"
            }
        ));
    }
    ExperimentResult {
        id: "e21".into(),
        title: E21Substrates.title().into(),
        paper_ref: "hierarchy corollary: robust constructions over weaker substrates (S5.2)".into(),
        tables: vec![substrate_table(&arms)],
        notes,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_spec::Bound;

    /// E18 with the 2-client model configs and short soak arms — the
    /// full grid runs in ff-sim's tests and in the release-mode report
    /// binary; this checks the experiment's own plumbing and verdicts.
    #[test]
    fn e18_passes_on_trimmed_grid() {
        let grid: Vec<CombineModelConfig> = combining_grid()
            .into_iter()
            .filter(|c| c.clients == 2 && c.rounds == 1)
            .collect();
        assert!(!grid.is_empty());
        assert!(grid
            .iter()
            .all(|c| matches!(c.stutter_budget, Bound::Finite(_))));
        let result = run_e18(&grid, 0.3);
        assert!(result.pass, "E18 failed:\n{}", result.render());
    }

    /// E21 with short arms: every registered substrate soaks, every
    /// consistency-promising substrate ends verify-consistent at the
    /// sweep fault rate, and the JSON document carries one entry per
    /// substrate with the measured columns.
    #[test]
    fn e21_sweeps_every_registered_substrate() {
        let result = run_e21(0.3);
        assert!(result.pass, "E21 failed:\n{}", result.render());

        let arms = run_substrate_sweep(0.2);
        assert_eq!(arms.len(), ff_store::substrate_names().len());
        assert!(
            arms.len() >= 5,
            "the sweep must cover at least 5 substrates"
        );
        let json = substrate_sweep_json(&arms).render();
        let back = JsonValue::parse(&json).unwrap();
        let subs = match back.get("substrates") {
            Some(JsonValue::Array(subs)) => subs,
            other => panic!("substrates key missing or not an array: {other:?}"),
        };
        assert_eq!(subs.len(), arms.len());
        for (entry, arm) in subs.iter().zip(&arms) {
            assert_eq!(
                entry.get("name").and_then(JsonValue::as_str),
                Some(arm.backend.name())
            );
            for key in ["observable_faults", "consistent", "contract_ok", "report"] {
                assert!(
                    entry.get(key).is_some(),
                    "{key} missing for {}",
                    arm.backend
                );
            }
            let report = entry.get("report").unwrap();
            assert!(
                report
                    .get("metrics")
                    .and_then(|m| m.get("total_ops_per_sec"))
                    .and_then(JsonValue::as_f64)
                    .is_some(),
                "throughput missing for {}",
                arm.backend
            );
        }
    }
}
