//! Experiments that need the whole stack at once.
//!
//! Most experiments live next to the layer they exercise (`ff-workload`
//! E1–E14, `ff-store` E15, `ff-net` E16/E17). E18 compares the
//! flat-combining shard cores against the uncombined submission path
//! *and* re-checks the combining model grid — store and simulator
//! together — so it lives here, in the one crate that depends on both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ff_sim::{check_combining, combining_crash_grid, combining_grid, CombineModelConfig};
use ff_store::{run_soak, SoakConfig};
use ff_workload::{Experiment, ExperimentResult, Table};

/// E18: flat-combining cores vs the uncombined path, plus the
/// exhaustive small-config model check of the combining protocol.
pub struct E18Combining;

impl Experiment for E18Combining {
    fn id(&self) -> &'static str {
        "e18"
    }

    fn title(&self) -> &'static str {
        "Flat-combining shard cores: A/B soak, read fast path, model grid"
    }

    fn run(&self) -> ExperimentResult {
        let mut grid = combining_grid();
        grid.extend(combining_crash_grid());
        run_e18(&grid, 0.6)
    }
}

/// The body of E18, parameterized so the unit test can run a trimmed
/// grid and shorter arms (`ff-sim` already exhausts the full grid in
/// its own tests; re-walking the 3-client configs under the debug
/// profile would dominate the suite for no new coverage).
fn run_e18(grid: &[CombineModelConfig], secs: f64) -> ExperimentResult {
    let mut notes = Vec::new();
    let mut pass = true;

    // Arm 1+2 — the same faulty soak, uncombined then combined. One
    // process, one machine state: the honest version of the comparison.
    let base_config = SoakConfig {
        threads: 3,
        shards: 4,
        secs,
        fault_rate: 0.2,
        checkpoint_interval: 16,
        ..SoakConfig::default()
    };
    let mut ab = Table::new(
        "combined vs uncombined soak (threads=3, shards=4, fault rate 0.2, mixed kinds)",
        &["path", "ops", "ops/sec", "combine passes", "consistent"],
    );
    let mut speedup = (0.0, 0.0);
    for combining in [false, true] {
        let report = run_soak(&SoakConfig {
            combining,
            ..base_config.clone()
        });
        let ops_per_sec = report.metrics.total_ops_per_sec();
        if combining {
            speedup.1 = ops_per_sec;
        } else {
            speedup.0 = ops_per_sec;
        }
        ab.push_row(&[
            if combining { "combined" } else { "uncombined" }.to_string(),
            report.metrics.total_ops().to_string(),
            format!("{ops_per_sec:.0}"),
            report
                .metrics
                .combining
                .as_ref()
                .map_or_else(|| "—".to_string(), |c| c.passes.to_string()),
            report.consistent.to_string(),
        ]);
        pass &= report.consistent;
    }
    if speedup.0 > 0.0 {
        notes.push(format!(
            "combined/uncombined throughput ratio: ×{:.2} (ratio is machine- and \
             profile-dependent; CI's release-mode `soak --ab` gate enforces ≥1)",
            speedup.1 / speedup.0
        ));
    }

    // Arm 3 — read-share sweep over the combined path: the wait-free
    // snapshot read should absorb nearly every GET, and the heavier the
    // read mix the more of the workload never touches the log.
    let mut sweep = Table::new(
        "combined path vs read share (threads=3, shards=4, fault rate 0.2)",
        &[
            "read %",
            "ops/sec",
            "fastpath hits",
            "fallbacks",
            "hit rate",
        ],
    );
    for read_pct in [50u32, 70, 95] {
        let report = run_soak(&SoakConfig {
            combining: true,
            read_pct,
            ..base_config.clone()
        });
        pass &= report.consistent;
        let c = report
            .metrics
            .combining
            .expect("combining soak must snapshot combiner counters");
        sweep.push_row(&[
            read_pct.to_string(),
            format!("{:.0}", report.metrics.total_ops_per_sec()),
            c.fastpath_hits.to_string(),
            c.fastpath_misses.to_string(),
            format!("{:.1}%", c.hit_rate() * 100.0),
        ]);
        if read_pct == 95 {
            // The acceptance bar: a read-heavy workload must be served
            // almost entirely by the wait-free path.
            if c.hit_rate() <= 0.9 {
                notes.push(format!(
                    "FAIL: 95%-GET arm fast-path hit rate {:.1}% ≤ 90%",
                    c.hit_rate() * 100.0
                ));
                pass = false;
            } else {
                notes.push(format!(
                    "95%-GET arm answered {:.1}% of reads wait-free",
                    c.hit_rate() * 100.0
                ));
            }
        }
    }

    // Arm 4 — the exhaustive model grid: no stale read past the decided
    // tail, no lost or duplicated op under combiner hand-off — nor
    // under adversarial combiner kills with the lease reclaim on —
    // across every interleaving of every small configuration.
    let mut model = Table::new(
        "combining model grid (exhaustive; stutters = tolerated cell faults, crashes = combiner kills)",
        &[
            "clients", "rounds", "stutters", "crashes", "lease", "states", "stale", "lost", "dup",
        ],
    );
    for cfg in grid {
        let report = check_combining(cfg);
        pass &= report.clean();
        model.push_row(&[
            cfg.clients.to_string(),
            cfg.rounds.to_string(),
            format!("{:?}", cfg.stutter_budget),
            cfg.crashes.to_string(),
            cfg.lease.to_string(),
            report.states.to_string(),
            report.stale_reads.to_string(),
            report.lost_ops.to_string(),
            report.duplicated_ops.to_string(),
        ]);
    }

    ExperimentResult {
        id: "e18".into(),
        title: E18Combining.title().into(),
        paper_ref: "flat combining over the robust universal construction (Sections 4–6)".into(),
        tables: vec![ab, sweep, model],
        notes,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_spec::Bound;

    /// E18 with the 2-client model configs and short soak arms — the
    /// full grid runs in ff-sim's tests and in the release-mode report
    /// binary; this checks the experiment's own plumbing and verdicts.
    #[test]
    fn e18_passes_on_trimmed_grid() {
        let grid: Vec<CombineModelConfig> = combining_grid()
            .into_iter()
            .filter(|c| c.clients == 2 && c.rounds == 1)
            .collect();
        assert!(!grid.is_empty());
        assert!(grid
            .iter()
            .all(|c| matches!(c.stutter_budget, Bound::Finite(_))));
        let result = run_e18(&grid, 0.3);
        assert!(result.pass, "E18 failed:\n{}", result.render());
    }
}
