//! B3 — the staged protocol's cost: latency vs `(f, t)` (the
//! `maxStage = t·(4f + f²)` bound dominates), plus the ablation of
//! running with a smaller-than-proven stage bound.
//!
//! Expected shapes: latency grows roughly linearly in `maxStage` (so
//! linearly in `t` and quadratically in `f`); shrinking the bound buys
//! proportional speedups (correctness under reduced bounds is measured
//! separately in E3's ablation table — the proven bound is conservative,
//! as the paper notes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_cas::{AtomicCasArray, FaultyCasArray, ProbabilisticPolicy};
use ff_consensus::{max_stage, Consensus, StagedConsensus};
use ff_spec::{Bound, Input};
use std::hint::black_box;
use std::sync::Arc;

fn faulty(f: u64, t: u64, seed: u64) -> Arc<FaultyCasArray> {
    Arc::new(
        FaultyCasArray::builder(f as usize)
            .faulty_first(f as usize)
            .per_object(Bound::Finite(t))
            .policy(ProbabilisticPolicy::new(0.3, seed))
            .record_history(false)
            .build(),
    )
}

fn bench_staged_ft(c: &mut Criterion) {
    let mut group = c.benchmark_group("b3_staged_decide");
    for f in [1u64, 2, 3] {
        for t in [1u64, 2, 4] {
            let id = format!("f{f}_t{t}_maxStage{}", max_stage(f, t));
            group.bench_with_input(BenchmarkId::new("faulty", &id), &(f, t), |b, &(f, t)| {
                b.iter_batched(
                    || StagedConsensus::new(faulty(f, t, 11), f, t),
                    |p| {
                        for i in 0..=(f as u32) {
                            black_box(p.decide(Input(i)));
                        }
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_max_stage_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("b3_max_stage_ablation");
    let (f, t) = (2u64, 2u64);
    let proven = max_stage(f, t); // 24
    for stages in [1u32, proven / 4, proven / 2, proven] {
        let stages = stages.max(1);
        group.bench_with_input(
            BenchmarkId::new("fault_free", stages),
            &stages,
            |b, &stages| {
                b.iter_batched(
                    || {
                        StagedConsensus::new(Arc::new(AtomicCasArray::new(f as usize)), f, t)
                            .with_max_stage(stages)
                    },
                    |p| {
                        for i in 0..=(f as u32) {
                            black_box(p.decide(Input(i)));
                        }
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_staged_ft, bench_max_stage_ablation);
criterion_main!(benches);
