//! B1/B2 — decide latency of the constructions vs the Herlihy baseline.
//!
//! B1: one-object protocols (Herlihy vs Figure 1) under increasing
//! overriding-fault rates, two sequential deciders.
//! B2: the cascade (Figure 2) as `f` grows, four sequential deciders.
//!
//! Absolute numbers are machine-dependent; the shapes to expect: the
//! fault rate barely moves the one-object protocols (one CAS either
//! way), and the cascade's cost grows linearly in `f` (it is an
//! `(f + 1)`-CAS sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_cas::{AtomicCasArray, FaultyCasArray, ProbabilisticPolicy};
use ff_consensus::{CascadeConsensus, Consensus, HerlihyConsensus, TwoProcessConsensus};
use ff_spec::{Bound, Input};
use std::hint::black_box;
use std::sync::Arc;

fn faulty_ensemble(objects: usize, faulty: usize, rate: f64, seed: u64) -> Arc<FaultyCasArray> {
    Arc::new(
        FaultyCasArray::builder(objects)
            .faulty_first(faulty)
            .per_object(Bound::Unbounded)
            .policy(ProbabilisticPolicy::new(rate, seed))
            .record_history(false)
            .build(),
    )
}

fn bench_one_object(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_one_object_decide");
    group.bench_function("herlihy_reliable_2_deciders", |b| {
        b.iter_batched(
            || HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1))),
            |p| {
                black_box(p.decide(Input(1)));
                black_box(p.decide(Input(2)));
            },
            criterion::BatchSize::SmallInput,
        )
    });
    for rate in [0.0, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("fig1_two_process", format!("rate_{rate:.1}")),
            &rate,
            |b, &rate| {
                b.iter_batched(
                    || TwoProcessConsensus::new(faulty_ensemble(1, 1, rate, 42)),
                    |p| {
                        black_box(p.decide(Input(1)));
                        black_box(p.decide(Input(2)));
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_cascade_decide");
    for f in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("greedy_faults", f), &f, |b, &f| {
            b.iter_batched(
                || CascadeConsensus::new(faulty_ensemble(f + 1, f, 1.0, 7), f),
                |p| {
                    for i in 0..4u32 {
                        black_box(p.decide(Input(i)));
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("fault_free", f), &f, |b, &f| {
            b.iter_batched(
                || CascadeConsensus::new(Arc::new(AtomicCasArray::new(f + 1)), f),
                |p| {
                    for i in 0..4u32 {
                        black_box(p.decide(Input(i)));
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_object, bench_cascade);
criterion_main!(benches);
