//! B5 — universal-construction throughput vs consensus-cell type.
//!
//! Expected shape: reliable < robust in per-op cost (the robust cell
//! sweeps f + 1 objects instead of 1); fault rate adds little on top
//! (an overriding fault is still a single atomic operation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_universal::{CellFactory, Counter, Handle, ReliableCells, RobustCells, UniversalLog};
use std::hint::black_box;
use std::sync::Arc;

fn bench_counter_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_universal_counter");
    let ops = 50u64;

    type FactoryMaker = Box<dyn Fn() -> Arc<dyn CellFactory>>;
    let cases: Vec<(&str, FactoryMaker)> = vec![
        ("reliable", Box::new(|| Arc::new(ReliableCells))),
        (
            "robust_f1_rate0.0",
            Box::new(|| Arc::new(RobustCells::new(1, 0.0, 3))),
        ),
        (
            "robust_f1_rate0.5",
            Box::new(|| Arc::new(RobustCells::new(1, 0.5, 3))),
        ),
        (
            "robust_f2_rate0.5",
            Box::new(|| Arc::new(RobustCells::new(2, 0.5, 3))),
        ),
    ];

    for (label, make) in cases {
        group.bench_with_input(BenchmarkId::new("adds", label), &ops, |b, &ops| {
            b.iter_batched(
                || {
                    let log = Arc::new(UniversalLog::new(make()));
                    Handle::new(log, 0, Counter::default())
                },
                |mut handle| {
                    for _ in 0..ops {
                        black_box(handle.invoke(Counter::add_op(1)));
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counter_ops);
criterion_main!(benches);
