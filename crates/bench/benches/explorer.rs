//! B4 — model-checker throughput: states explored per configuration.
//!
//! Expected shape: state counts (and hence time) grow combinatorially
//! with the number of processes and with fault branching; the exact-key
//! memoization keeps small configurations tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_consensus::{cascades, one_shots, staged_machines};
use ff_sim::{explore, explore_parallel, ExplorerConfig, FaultPlan, Heap, SimState};
use ff_spec::{Bound, Input};
use std::hint::black_box;

fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(Input).collect()
}

fn config() -> ExplorerConfig {
    ExplorerConfig {
        max_states: 2_000_000,
        max_depth: 100_000,
        stop_at_first_violation: false,
        threads: 1,
    }
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_explorer");
    group.sample_size(10);

    for n in [2usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("one_shot_unbounded_faults", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let plan = FaultPlan::overriding(1, Bound::Unbounded);
                    let state = SimState::new(one_shots(&inputs(n)), Heap::new(1, 0), plan);
                    black_box(explore(state, config()))
                })
            },
        );
    }

    group.bench_function("cascade_f1_n3_unbounded", |b| {
        b.iter(|| {
            let plan = FaultPlan::overriding(1, Bound::Unbounded);
            let state = SimState::new(cascades(&inputs(3), 1), Heap::new(2, 0), plan);
            black_box(explore(state, config()))
        })
    });

    group.bench_function("staged_f1_t1_n2_bounded", |b| {
        b.iter(|| {
            let plan = FaultPlan::overriding(1, Bound::Finite(1));
            let state = SimState::new(staged_machines(&inputs(2), 1, 1), Heap::new(1, 0), plan);
            black_box(explore(state, config()))
        })
    });

    group.finish();
}

/// Sequential-vs-parallel throughput on one full scan. Thread counts
/// beyond the machine's cores only measure coordination overhead, so the
/// sweep is capped at available parallelism.
fn bench_explore_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_explorer_parallel");
    group.sample_size(10);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize];
    for t in [2usize, 4, 8] {
        if t <= cores {
            counts.push(t);
        }
    }
    for threads in counts {
        group.bench_with_input(
            BenchmarkId::new("staged_f1_t1_n3_full_scan", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let plan = FaultPlan::overriding(1, Bound::Finite(1));
                    let state =
                        SimState::new(staged_machines(&inputs(3), 1, 1), Heap::new(1, 0), plan);
                    black_box(explore_parallel(
                        state,
                        ExplorerConfig {
                            threads,
                            ..config()
                        },
                    ))
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_explore, bench_explore_parallel);
criterion_main!(benches);
