//! Consensus through a write-and-f-array aggregation stage (Obryk,
//! arXiv 1407.6153).
//!
//! A write-and-f-array alone cannot solve `n`-process consensus: once
//! two processes write distinct cells the operations commute in
//! Herlihy's sense, so the object's consensus number is bounded (2).
//! What it *does* give wait-free is a one-step linearizable **aggregate
//! of all inputs announced so far** — here `f(A) = (count, min)`. This
//! protocol uses that aggregate as a candidate-selection stage in front
//! of a single pluggable arbitration consensus:
//!
//! 1. `write_and_f(input)` — announce the input and atomically receive
//!    the min over all inputs announced up to this instant;
//! 2. `arb.decide(min)` — one downstream consensus object arbitrates
//!    among the (already input-valid) candidates.
//!
//! **Validity** holds end to end: the min over announced inputs is some
//! process's input, and the arbitration stage only ever decides one of
//! its proposals. **Agreement** and wait-freedom are inherited from the
//! arbitration object. The point, for the hierarchy sweep, is that the
//! expensive all-process data funnel runs on an object *weaker than
//! CAS*, shrinking the arbitration stage to one decision over
//! pre-aggregated candidates — the shape of Obryk's `f`-array
//! application, measured here over both reliable and functionally
//! faulty arbitration objects.

use crate::protocol::Consensus;
use ff_cas::WriteAndFArray;
use ff_spec::{Input, Tolerance};
use std::sync::Arc;

/// Consensus = write-and-f-array aggregation + pluggable arbitration.
pub struct WafConsensus {
    waf: WriteAndFArray,
    arb: Arc<dyn Consensus>,
}

impl WafConsensus {
    /// Aggregate through a `slots`-cell write-and-f-array, arbitrate
    /// with `arb`.
    pub fn new(slots: usize, arb: Arc<dyn Consensus>) -> Self {
        WafConsensus {
            waf: WriteAndFArray::new(slots),
            arb,
        }
    }

    /// The arbitration stage (exposed for accounting and tests).
    pub fn arbitration(&self) -> &dyn Consensus {
        self.arb.as_ref()
    }
}

impl Consensus for WafConsensus {
    fn decide(&self, val: Input) -> Input {
        let view = self.waf.write_and_f_auto(val.to_word());
        let candidate = Input::from_word(view.min.expect("own write is visible"))
            .expect("aggregate min is a written input");
        self.arb.decide(candidate)
    }

    fn tolerance(&self) -> Tolerance {
        // The aggregation stage is fault-free (plain atomics); faults
        // live in the arbitration stage's ensemble.
        self.arb.tolerance()
    }

    fn objects_used(&self) -> usize {
        // The write-and-f-array counts as one shared object alongside
        // whatever the arbitration stage consumes.
        1 + self.arb.objects_used()
    }

    fn name(&self) -> &'static str {
        "write-and-f-array"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::herlihy::HerlihyConsensus;
    use ff_cas::AtomicCasArray;

    fn waf_over_reliable(n: usize) -> WafConsensus {
        let ensemble = Arc::new(AtomicCasArray::new(1));
        WafConsensus::new(n, Arc::new(HerlihyConsensus::new(ensemble)))
    }

    #[test]
    fn decides_an_input_and_sticks() {
        let c = waf_over_reliable(4);
        let first = c.decide(Input(9));
        assert_eq!(first, Input(9), "solo run decides own input");
        assert_eq!(c.decide(Input(3)), first, "later calls agree");
    }

    #[test]
    fn accounting_includes_the_array() {
        let c = waf_over_reliable(4);
        assert_eq!(c.objects_used(), 2, "waf + one arbitration object");
        assert_eq!(c.name(), "write-and-f-array");
    }

    #[test]
    fn concurrent_agreement_and_validity() {
        for _ in 0..50 {
            let n = 8usize;
            let c = Arc::new(waf_over_reliable(n));
            let decisions: Vec<Input> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || c.decide(Input(10 + i as u32)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let first = decisions[0];
            assert!(decisions.iter().all(|&d| d == first), "agreement");
            assert!(
                (10..10 + n as u32).contains(&first.0),
                "validity: decided {first:?} is some input"
            );
        }
    }
}
