//! # ff-consensus — consensus from functionally-faulty CAS objects
//!
//! The primary contribution of *Functional Faults* (Sheffi & Petrank,
//! SPAA 2020) as a library: wait-free consensus protocols built from CAS
//! objects that may exhibit the **overriding fault** (the comparison
//! erroneously succeeds and the new value is written regardless), plus
//! the Herlihy baseline and the silent-fault retry protocol.
//!
//! | Construction | Paper | Objects | Tolerance |
//! |---|---|---|---|
//! | [`HerlihyConsensus`] | §2 | 1 | `(0, 0, ∞)` — reliable objects only |
//! | [`TwoProcessConsensus`] | Fig. 1 / Thm 4 | 1 | `(f, ∞, 2)` |
//! | [`CascadeConsensus`] | Fig. 2 / Thm 5 | f + 1 | `(f, ∞, ∞)` |
//! | [`StagedConsensus`] | Fig. 3 / Thm 6 | f | `(f, t, f+1)` |
//! | [`SilentRetryConsensus`] | §3.4 | 1 | bounded silent faults |
//!
//! Every protocol exists in two executable forms sharing the same logic:
//! a **blocking** form (this module's types, generic over
//! [`ff_cas::CasEnsemble`], for real threads over std atomics) and a
//! **step-machine** form ([`machines`], implementing
//! [`ff_sim::Process`], for the deterministic simulator and the
//! exhaustive model checker). The [`factory`] picks the construction
//! matching a requested `(f, t, n)` tolerance, per Section 4's case
//! analysis; [`runner::run_native`] drives a protocol on real threads and
//! checks the consensus properties.
//!
//! ```
//! use ff_consensus::{CascadeConsensus, Consensus};
//! use ff_cas::{FaultyCasArray, AlwaysPolicy};
//! use ff_spec::{Bound, Input};
//! use std::sync::Arc;
//!
//! // f = 1 faulty object (unbounded overriding faults), f + 1 = 2 objects.
//! let ensemble = Arc::new(
//!     FaultyCasArray::builder(2)
//!         .faulty_first(1)
//!         .per_object(Bound::Unbounded)
//!         .policy(AlwaysPolicy)
//!         .build(),
//! );
//! let consensus = CascadeConsensus::new(ensemble, 1);
//! let first = consensus.decide(Input(7));
//! let second = consensus.decide(Input(9));
//! assert_eq!(first, second); // agreement despite the faulty object
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cascade;
pub mod factory;
pub mod herlihy;
pub mod machines;
pub mod protocol;
pub mod runner;
pub mod silent;
pub mod stage_value;
pub mod staged;
pub mod two_process;
pub mod waf;

pub use cascade::CascadeConsensus;
pub use factory::{build, recommend, ProtocolKind, Recommendation};
pub use herlihy::HerlihyConsensus;
pub use machines::{
    cascades, one_shots, silent_retries, staged as staged_machines, staged_with_max_stage,
    CascadeMachine, OneShotMachine, SilentRetryMachine, StagedMachine, TasConsensusMachine,
};
pub use protocol::Consensus;
pub use runner::{run_native, NativeRunReport};
pub use silent::SilentRetryConsensus;
pub use stage_value::{max_stage, StageValue, MAX_STAGE};
pub use staged::StagedConsensus;
pub use two_process::TwoProcessConsensus;
pub use waf::WafConsensus;
