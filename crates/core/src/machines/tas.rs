//! A second primitive under functional faults — the future-work probe
//! the paper's conclusion asks for ("examine other widely used functions
//! with natural faults").
//!
//! Test-and-set over a binary cell, expressed in this model as
//! `CAS(O_0, ⊥, 1)` (win iff the old value was `⊥`), combined with
//! announce registers, solves consensus for two processes. Two measured
//! observations fall out of the model checker:
//!
//! * **TAS is structurally immune to the overriding fault.** The only
//!   value ever written is `1`; an overriding write of `1` over `1`
//!   leaves the cell unchanged and returns the correct old value, so it
//!   satisfies the standard postconditions — per Definition 1 it is not
//!   a fault at all. The explorer confirms: zero fault opportunities
//!   exist, and the protocol verifies even under an unbounded plan.
//! * **TAS is vulnerable to the silent fault**, which drops the winning
//!   set: a second caller also "wins" and the two deciders split.
//!
//! The contrast shows the functional-fault lens doing work beyond the
//! paper's CAS case study: which deviations matter depends on how the
//! *usage pattern* exercises the operation's postconditions.

use ff_sim::{Op, OpResult, Process, RegId, Status};
use ff_spec::{Input, ObjectId, BOTTOM};

/// Word written into the TAS cell by a winner.
const SET: u64 = 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Write own input to register `id`.
    Announce,
    /// `TAS(O_0)` — i.e. `CAS(O_0, ⊥, 1)`.
    Race,
    /// Lost: read the other process's announcement.
    ReadWinner,
}

/// Two-process consensus from one test-and-set cell plus two announce
/// registers.
#[derive(Clone, Debug)]
pub struct TasConsensusMachine {
    id: usize,
    input: Input,
    phase: Phase,
    status: Status,
}

impl TasConsensusMachine {
    /// Machine for process `id ∈ {0, 1}`.
    pub fn new(id: usize, input: Input) -> Self {
        assert!(id < 2, "test-and-set solves consensus for two processes");
        TasConsensusMachine {
            id,
            input,
            phase: Phase::Announce,
            status: Status::Running,
        }
    }

    /// The two machines for inputs `(a, b)`.
    pub fn pair(a: Input, b: Input) -> Vec<Box<dyn Process>> {
        vec![
            Box::new(TasConsensusMachine::new(0, a)),
            Box::new(TasConsensusMachine::new(1, b)),
        ]
    }
}

impl Process for TasConsensusMachine {
    fn next_op(&self) -> Op {
        match self.phase {
            Phase::Announce => Op::Write(RegId(self.id), self.input.to_word()),
            Phase::Race => Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: SET,
            },
            Phase::ReadWinner => Op::Read(RegId(1 - self.id)),
        }
    }

    fn apply(&mut self, result: OpResult) -> Status {
        match self.phase {
            Phase::Announce => {
                self.phase = Phase::Race;
            }
            Phase::Race => {
                if result.cas_old() == BOTTOM {
                    // Won the TAS: our own input is the decision.
                    self.status = Status::Decided(self.input);
                } else {
                    self.phase = Phase::ReadWinner;
                }
            }
            Phase::ReadWinner => {
                if let OpResult::Read(v) = result {
                    let winner = Input::from_word(v).expect("the winner announced before racing");
                    self.status = Status::Decided(winner);
                }
            }
        }
        self.status
    }

    fn status(&self) -> Status {
        self.status
    }

    fn input(&self) -> Input {
        self.input
    }

    fn snapshot(&self) -> Vec<u64> {
        vec![
            self.id as u64,
            self.input.0 as u64,
            match self.phase {
                Phase::Announce => 0,
                Phase::Race => 1,
                Phase::ReadWinner => 2,
            },
            self.status.word(),
        ]
    }

    fn box_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::{explore, ExplorerConfig, FaultPlan, Heap, SimState};
    use ff_spec::Bound;

    fn state(plan: FaultPlan) -> SimState {
        SimState::new(
            TasConsensusMachine::pair(Input(10), Input(20)),
            Heap::new(1, 2),
            plan,
        )
    }

    #[test]
    fn fault_free_tas_consensus_verifies() {
        let report = explore(state(FaultPlan::none()), ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn tas_is_immune_to_unbounded_overriding_faults() {
        // The overriding plan offers ZERO observable opportunities: the
        // only written value is 1, so overriding 1 over 1 (or the
        // legitimate ⊥ → 1) satisfies the standard postconditions.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let report = explore(state(plan), ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn tas_breaks_under_one_silent_fault() {
        // The silent fault drops the winning set: both processes win and
        // decide their own inputs.
        let plan = FaultPlan::silent(1, Bound::Finite(1));
        let report = explore(state(plan), ExplorerConfig::default());
        assert!(report.violation.is_some(), "{report:?}");
    }

    #[test]
    fn machine_loser_adopts_winner() {
        let mut loser = TasConsensusMachine::new(1, Input(20));
        loser.apply(OpResult::Write);
        assert_eq!(
            loser.next_op(),
            Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: SET
            }
        );
        loser.apply(OpResult::Cas { old: SET }); // lost
        assert_eq!(loser.next_op(), Op::Read(RegId(0)));
        assert_eq!(loser.apply(OpResult::Read(10)), Status::Decided(Input(10)));
    }

    #[test]
    #[should_panic(expected = "two processes")]
    fn three_process_tas_rejected() {
        let _ = TasConsensusMachine::new(2, Input(1));
    }
}
