//! Step-machine form of Figure 2 (the `f`-tolerant cascade).

use ff_sim::{Op, OpResult, Process, Status};
use ff_spec::{Input, ObjectId, BOTTOM};

/// Sweeps `O_0 … O_f`, CASing the current estimate in and adopting any
/// non-`⊥` value found; decides after the last object.
#[derive(Clone, Debug)]
pub struct CascadeMachine {
    input: Input,
    output: Input,
    f: usize,
    i: usize,
    status: Status,
}

impl CascadeMachine {
    /// Machine for the `f`-tolerant protocol (over `f + 1` objects).
    pub fn new(input: Input, f: usize) -> Self {
        CascadeMachine {
            input,
            output: input,
            f,
            i: 0,
            status: Status::Running,
        }
    }
}

impl Process for CascadeMachine {
    fn next_op(&self) -> Op {
        Op::Cas {
            obj: ObjectId(self.i),
            exp: BOTTOM,
            new: self.output.to_word(),
        }
    }

    fn apply(&mut self, result: OpResult) -> Status {
        let old = result.cas_old();
        if old != BOTTOM {
            self.output = Input::from_word(old).expect("cascade cells hold ⊥ or input values only");
        }
        self.i += 1;
        if self.i > self.f {
            self.status = Status::Decided(self.output);
        }
        self.status
    }

    fn status(&self) -> Status {
        self.status
    }

    fn input(&self) -> Input {
        self.input
    }

    fn snapshot(&self) -> Vec<u64> {
        vec![
            self.input.0 as u64,
            self.output.0 as u64,
            self.i as u64,
            self.status.word(),
        ]
    }

    fn box_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::cascades;
    use ff_sim::{
        explore, run, ExplorerConfig, FaultPlan, GreedyFault, Heap, NeverFault, RoundRobin,
        RunConfig, SeededRandom, SimState,
    };
    use ff_spec::{check_consensus, Bound};

    #[test]
    fn solo_decides_own_input() {
        let mut m = CascadeMachine::new(Input(3), 1);
        // Two objects: both CASes succeed against ⊥.
        assert_eq!(m.apply(OpResult::Cas { old: BOTTOM }), Status::Running);
        assert_eq!(
            m.apply(OpResult::Cas { old: BOTTOM }),
            Status::Decided(Input(3))
        );
    }

    #[test]
    fn adopts_found_values() {
        let mut m = CascadeMachine::new(Input(3), 1);
        assert_eq!(m.apply(OpResult::Cas { old: 9 }), Status::Running);
        assert_eq!(
            m.apply(OpResult::Cas { old: BOTTOM }),
            Status::Decided(Input(9))
        );
    }

    #[test]
    fn theorem5_f1_verified_exhaustively() {
        // f = 1: 2 objects, O_0 faulty (unbounded), n = 3 — exhaustively
        // correct (Theorem 5 at the smallest nontrivial size).
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let inputs = [Input(10), Input(20), Input(30)];
        let state = SimState::new(cascades(&inputs, 1), Heap::new(2, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn theorem5_faulty_object_anywhere() {
        // The faulty object's position must not matter: put it last.
        let plan = FaultPlan {
            kind: ff_spec::FaultKind::Overriding,
            faulty: vec![ObjectId(1)],
            per_object: Bound::Unbounded,
            kind_overrides: Default::default(),
        };
        let inputs = [Input(10), Input(20), Input(30)];
        let state = SimState::new(cascades(&inputs, 1), Heap::new(2, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn only_f_objects_breaks_with_three_processes() {
        // Theorem 18's positive side: run the cascade logic over f = 1
        // objects ALL faulty (i.e. zero reliable objects) with n = 3 — a
        // violation exists. (CascadeMachine with f = 0 is the one-shot.)
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let inputs = [Input(10), Input(20), Input(30)];
        let state = SimState::new(cascades(&inputs, 0), Heap::new(1, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.violation.is_some(), "{report:?}");
    }

    #[test]
    fn greedy_random_stress_run() {
        for seed in 0..20 {
            let plan = FaultPlan::overriding(2, Bound::Unbounded);
            let inputs: Vec<Input> = (0..5).map(Input).collect();
            let report = run(
                cascades(&inputs, 2),
                Heap::new(3, 0),
                &plan,
                &mut SeededRandom::new(seed),
                &mut GreedyFault::new(plan.clone()),
                RunConfig::default(),
            );
            let verdict = check_consensus(&report.outcomes, Some(3));
            assert!(verdict.ok(), "seed {seed}: {:?}", verdict.violations);
        }
    }

    #[test]
    fn wait_freedom_step_bound() {
        // Each process takes exactly f + 1 shared steps.
        let inputs = [Input(1), Input(2)];
        let report = run(
            cascades(&inputs, 3),
            Heap::new(4, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        );
        for o in &report.outcomes {
            assert_eq!(o.steps, 4);
        }
    }
}
