//! Step-machine form of the silent-fault retry protocol (Section 3.4).

use ff_sim::{Op, OpResult, Process, Status};
use ff_spec::{Input, ObjectId, BOTTOM};

/// Keeps CASing `(⊥ → input)` on `O_0`; decides the first non-`⊥` value
/// it sees. Terminates iff the total number of silent faults is bounded —
/// under an unbounded greedy silent adversary the state graph has a
/// cycle, which the explorer reports as potential nontermination.
#[derive(Clone, Debug)]
pub struct SilentRetryMachine {
    input: Input,
    status: Status,
    attempts: u64,
}

impl SilentRetryMachine {
    /// Machine with the given input.
    pub fn new(input: Input) -> Self {
        SilentRetryMachine {
            input,
            status: Status::Running,
            attempts: 0,
        }
    }

    /// CAS attempts so far (for step-complexity measurements).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }
}

impl Process for SilentRetryMachine {
    fn next_op(&self) -> Op {
        Op::Cas {
            obj: ObjectId(0),
            exp: BOTTOM,
            new: self.input.to_word(),
        }
    }

    fn apply(&mut self, result: OpResult) -> Status {
        self.attempts += 1;
        let old = result.cas_old();
        if old != BOTTOM {
            let winner = Input::from_word(old).expect("silent-retry cell holds ⊥ or inputs only");
            self.status = Status::Decided(winner);
        }
        self.status
    }

    fn status(&self) -> Status {
        self.status
    }

    fn input(&self) -> Input {
        self.input
    }

    fn snapshot(&self) -> Vec<u64> {
        // `attempts` is intentionally *excluded*: it does not affect
        // future behavior, and keeping it out lets the explorer's
        // memoization recognize the revisited states that witness the
        // unbounded-silent-fault cycle.
        vec![self.input.0 as u64, self.status.word()]
    }

    fn box_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::silent_retries;
    use ff_sim::{
        explore, run, ExplorerConfig, FaultPlan, GreedyFault, Heap, RoundRobin, RunConfig, SimState,
    };
    use ff_spec::{check_consensus, Bound};

    #[test]
    fn bounded_silent_faults_verified_exhaustively() {
        // One object with at most 2 silent faults, n = 2: every schedule
        // and fault pattern decides consistently.
        let plan = FaultPlan::silent(1, Bound::Finite(2));
        let inputs = [Input(10), Input(20)];
        let state = SimState::new(silent_retries(&inputs), Heap::new(1, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn unbounded_silent_faults_cycle() {
        // Section 3.4: with unbounded silent faults "one can construct an
        // execution in which no process ever updates the CAS object and
        // the protocol never terminates" — the explorer finds the cycle.
        let plan = FaultPlan::silent(1, Bound::Unbounded);
        let inputs = [Input(10), Input(20)];
        let state = SimState::new(silent_retries(&inputs), Heap::new(1, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.cycle_found, "{report:?}");
        assert!(!report.verified());
    }

    #[test]
    fn greedy_bounded_run_decides() {
        let plan = FaultPlan::silent(1, Bound::Finite(3));
        let inputs = [Input(1), Input(2), Input(3)];
        let report = run(
            silent_retries(&inputs),
            Heap::new(1, 0),
            &plan,
            &mut RoundRobin::new(),
            &mut GreedyFault::new(plan.clone()),
            RunConfig::default(),
        );
        assert!(report.completed);
        assert!(check_consensus(&report.outcomes, None).ok());
    }

    #[test]
    fn attempts_counter_tracks_retries() {
        let mut m = SilentRetryMachine::new(Input(5));
        m.apply(OpResult::Cas { old: BOTTOM });
        m.apply(OpResult::Cas { old: BOTTOM });
        m.apply(OpResult::Cas { old: 5 });
        assert_eq!(m.attempts(), 3);
        assert_eq!(m.status(), Status::Decided(Input(5)));
    }
}
