//! Step-machine form of the single-CAS protocol (Herlihy's baseline and,
//! with two processes, Figure 1).

use ff_sim::{Op, OpResult, Process, Status};
use ff_spec::{Input, ObjectId, BOTTOM};

/// One CAS on `O_0`, then decide the winner's value.
#[derive(Clone, Debug)]
pub struct OneShotMachine {
    input: Input,
    status: Status,
}

impl OneShotMachine {
    /// Machine with the given input.
    pub fn new(input: Input) -> Self {
        OneShotMachine {
            input,
            status: Status::Running,
        }
    }
}

impl Process for OneShotMachine {
    fn next_op(&self) -> Op {
        Op::Cas {
            obj: ObjectId(0),
            exp: BOTTOM,
            new: self.input.to_word(),
        }
    }

    fn apply(&mut self, result: OpResult) -> Status {
        let old = result.cas_old();
        let decided = match Input::from_word(old) {
            Some(winner) => winner, // someone wrote first
            None => self.input,     // the cell held ⊥: we chose
        };
        self.status = Status::Decided(decided);
        self.status
    }

    fn status(&self) -> Status {
        self.status
    }

    fn input(&self) -> Input {
        self.input
    }

    fn snapshot(&self) -> Vec<u64> {
        vec![self.input.0 as u64, self.status.word()]
    }

    fn box_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::{
        explore, run, ExplorerConfig, FaultPlan, Heap, NeverFault, RoundRobin, RunConfig, SimState,
    };
    use ff_spec::{check_consensus, Bound};

    #[test]
    fn decides_own_input_when_first() {
        let mut m = OneShotMachine::new(Input(5));
        assert_eq!(
            m.next_op(),
            Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: 5
            }
        );
        assert_eq!(
            m.apply(OpResult::Cas { old: BOTTOM }),
            Status::Decided(Input(5))
        );
    }

    #[test]
    fn adopts_winner() {
        let mut m = OneShotMachine::new(Input(5));
        assert_eq!(m.apply(OpResult::Cas { old: 9 }), Status::Decided(Input(9)));
    }

    #[test]
    fn executor_run_agrees() {
        let procs = super::super::one_shots(&[Input(1), Input(2), Input(3)]);
        let report = run(
            procs,
            Heap::new(1, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        );
        assert!(check_consensus(&report.outcomes, Some(1)).ok());
    }

    #[test]
    fn theorem4_two_processes_verified_exhaustively() {
        // Figure 1 / Theorem 4: n = 2, one object, UNBOUNDED overriding
        // faults — exhaustively correct.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(
            super::super::one_shots(&[Input(10), Input(20)]),
            Heap::new(1, 0),
            plan,
        );
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn three_processes_with_faults_violate() {
        // The same protocol is NOT (f, ∞, 3)-tolerant: the explorer finds
        // a witness.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(
            super::super::one_shots(&[Input(10), Input(20), Input(30)]),
            Heap::new(1, 0),
            plan,
        );
        let report = explore(state, ExplorerConfig::default());
        assert!(report.violation.is_some());
    }
}
