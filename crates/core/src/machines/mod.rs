//! Step-machine forms of the protocols, for the `ff-sim` substrate.
//!
//! Each machine replays the corresponding blocking protocol one shared
//! step at a time, which is what the exhaustive explorer and the
//! adversarial schedulers need. The two forms are cross-validated in
//! integration tests: on matched scripted executions they make the same
//! decisions.

mod cascade;
mod one_shot;
mod silent;
mod staged;
mod tas;

pub use cascade::CascadeMachine;
pub use one_shot::OneShotMachine;
pub use silent::SilentRetryMachine;
pub use staged::StagedMachine;
pub use tas::TasConsensusMachine;

use ff_sim::Process;
use ff_spec::Input;

/// Convenience: box a homogeneous set of machines from inputs.
pub fn boxed<M, F>(inputs: &[Input], make: F) -> Vec<Box<dyn Process>>
where
    M: Process + 'static,
    F: Fn(Input) -> M,
{
    inputs
        .iter()
        .map(|&v| Box::new(make(v)) as Box<dyn Process>)
        .collect()
}

/// One-shot machines (Herlihy / Figure 1) for each input.
pub fn one_shots(inputs: &[Input]) -> Vec<Box<dyn Process>> {
    boxed(inputs, OneShotMachine::new)
}

/// Cascade machines (Figure 2, `f`-tolerant, `f + 1` objects) for each
/// input.
pub fn cascades(inputs: &[Input], f: usize) -> Vec<Box<dyn Process>> {
    boxed(inputs, |v| CascadeMachine::new(v, f))
}

/// Staged machines (Figure 3, `(f, t, f+1)`-tolerant, `f` objects) for
/// each input.
pub fn staged(inputs: &[Input], f: u64, t: u64) -> Vec<Box<dyn Process>> {
    boxed(inputs, |v| StagedMachine::new(v, f, t))
}

/// Staged machines with an explicit stage bound (ablations).
pub fn staged_with_max_stage(inputs: &[Input], f: u64, max_stage: u32) -> Vec<Box<dyn Process>> {
    boxed(inputs, |v| StagedMachine::with_max_stage(v, f, max_stage))
}

/// Silent-retry machines for each input.
pub fn silent_retries(inputs: &[Input]) -> Vec<Box<dyn Process>> {
    boxed(inputs, SilentRetryMachine::new)
}
