//! Step-machine form of Figure 3 (the `(f, t, f+1)`-tolerant staged
//! protocol) — one CAS per step, replicating the blocking implementation
//! in `crate::staged` decision for decision.

use crate::stage_value::{max_stage, StageValue};
use ff_sim::{Op, OpResult, Process, Status};
use ff_spec::{Input, ObjectId, Word, BOTTOM};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Lines 3–18: sweeping object `i` at stage `s`.
    Main,
    /// Lines 19–23: funneling into `O_0`.
    Final,
}

/// The staged protocol as a step machine.
///
/// Unlike the blocking form, the machine does **not** enforce the
/// `n ≤ f + 1` participant cap: the lower-bound experiments (Theorem 19)
/// deliberately run it with `f + 2` processes to exhibit the violation.
#[derive(Clone, Debug)]
pub struct StagedMachine {
    input: Input,
    f: u64,
    max_stage: u32,
    output: Input,
    exp: Word,
    s: u32,
    i: usize,
    phase: Phase,
    status: Status,
}

impl StagedMachine {
    /// Machine with the proven stage bound `t · (4f + f²)`.
    pub fn new(input: Input, f: u64, t: u64) -> Self {
        Self::with_max_stage(input, f, max_stage(f, t))
    }

    /// Machine with an explicit stage bound (ablations).
    pub fn with_max_stage(input: Input, f: u64, max_stage: u32) -> Self {
        assert!(f >= 1, "Theorem 6 needs f ∈ ℕ⁺");
        assert!(max_stage >= 1, "need at least one stage");
        StagedMachine {
            input,
            f,
            max_stage,
            output: input,
            exp: BOTTOM,
            s: 0,
            i: 0,
            phase: Phase::Main,
            status: Status::Running,
        }
    }

    /// Line 17 (`exp.stage ← s`, `⊥` stays `⊥`) plus the for/while loop
    /// bookkeeping of lines 4 and 18.
    fn advance_object(&mut self) {
        self.exp = match StageValue::unpack(self.exp) {
            None => BOTTOM,
            Some(sv) => StageValue::new(sv.val, self.s).pack(),
        };
        self.i += 1;
        if self.i as u64 == self.f {
            self.i = 0;
            self.s += 1;
            if self.s >= self.max_stage {
                self.phase = Phase::Final;
            }
        }
    }
}

impl Process for StagedMachine {
    fn next_op(&self) -> Op {
        match self.phase {
            Phase::Main => Op::Cas {
                obj: ObjectId(self.i),
                exp: self.exp,
                new: StageValue::new(self.output, self.s).pack(),
            },
            Phase::Final => Op::Cas {
                obj: ObjectId(0),
                exp: self.exp,
                new: StageValue::new(self.output, self.max_stage).pack(),
            },
        }
    }

    fn apply(&mut self, result: OpResult) -> Status {
        let old = result.cas_old();
        match self.phase {
            Phase::Main => {
                if old != self.exp {
                    if StageValue::stage_of(old) >= self.s as i64 {
                        let sv =
                            StageValue::unpack(old).expect("stage ≥ s ≥ 0 implies a non-⊥ pair");
                        self.output = sv.val; // line 9
                        self.s = sv.stage; // line 10
                        if self.s == self.max_stage {
                            self.status = Status::Decided(self.output); // line 12
                            return self.status;
                        }
                        // line 13 (value part; stage retargeted by line 17)
                        self.exp = StageValue::new(sv.val, sv.stage.saturating_sub(1)).pack();
                        self.advance_object(); // line 14 + 17
                    } else {
                        self.exp = old; // line 15: retry same object
                    }
                } else {
                    self.advance_object(); // line 16 + 17
                }
            }
            Phase::Final => {
                if old != self.exp && StageValue::stage_of(old) < self.max_stage as i64 {
                    self.exp = old; // line 22
                } else {
                    self.status = Status::Decided(self.output); // line 24
                }
            }
        }
        self.status
    }

    fn status(&self) -> Status {
        self.status
    }

    fn input(&self) -> Input {
        self.input
    }

    fn snapshot(&self) -> Vec<u64> {
        vec![
            self.input.0 as u64,
            self.output.0 as u64,
            self.exp,
            self.s as u64,
            self.i as u64,
            match self.phase {
                Phase::Main => 0,
                Phase::Final => 1,
            },
            self.status.word(),
        ]
    }

    fn box_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::staged;
    use ff_sim::{
        explore, run, ExplorerConfig, FaultPlan, GreedyFault, Heap, NeverFault, RoundRobin,
        RunConfig, SeededRandom, SimState,
    };
    use ff_spec::{check_consensus, Bound};

    #[test]
    fn solo_run_decides_own_input() {
        let inputs = [Input(7)];
        let report = run(
            staged(&inputs, 2, 1),
            Heap::new(2, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        );
        assert!(report.completed);
        assert_eq!(report.outcomes[0].decision, Some(Input(7)));
    }

    #[test]
    fn fault_free_pair_agrees_exhaustively() {
        // f = 1, t = 1 (maxStage = 5), n = 2, no faults: exhaustive.
        let inputs = [Input(10), Input(20)];
        let state = SimState::new(staged(&inputs, 1, 1), Heap::new(1, 0), FaultPlan::none());
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn theorem6_f1_t1_verified_exhaustively() {
        // f = 1 object, ALL faulty, t = 1, n = f + 1 = 2: the smallest
        // instance of the headline theorem, proved by enumeration.
        let plan = FaultPlan::overriding(1, Bound::Finite(1));
        let inputs = [Input(10), Input(20)];
        let state = SimState::new(staged(&inputs, 1, 1), Heap::new(1, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn theorem6_f1_t2_verified_exhaustively() {
        let plan = FaultPlan::overriding(1, Bound::Finite(2));
        let inputs = [Input(10), Input(20)];
        let state = SimState::new(staged(&inputs, 1, 2), Heap::new(1, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn theorem6_f2_t1_random_stress() {
        // f = 2, t = 1, n = 3: exhaustive exploration is large; stress
        // with seeded random schedules + greedy faults instead (the
        // exhaustive run lives in the slow integration suite).
        for seed in 0..40 {
            let plan = FaultPlan::overriding(2, Bound::Finite(1));
            let inputs = [Input(10), Input(20), Input(30)];
            let report = run(
                staged(&inputs, 2, 1),
                Heap::new(2, 0),
                &plan,
                &mut SeededRandom::new(seed),
                &mut GreedyFault::new(plan.clone()),
                RunConfig::default(),
            );
            assert!(report.completed, "seed {seed}");
            let verdict = check_consensus(&report.outcomes, None);
            assert!(verdict.ok(), "seed {seed}: {:?}", verdict.violations);
        }
    }

    #[test]
    fn machine_matches_blocking_form_solo() {
        // Cross-validation: a solo machine run and a solo blocking run
        // decide identically and issue the same number of CASes.
        use crate::protocol::Consensus;
        use crate::staged::StagedConsensus;
        use ff_cas::AtomicCasArray;
        use std::sync::Arc;

        let (f, t) = (2u64, 1u64);
        let report = run(
            staged(&[Input(42)], f, t),
            Heap::new(f as usize, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        );
        let blocking = StagedConsensus::new(Arc::new(AtomicCasArray::new(f as usize)), f, t);
        assert_eq!(
            report.outcomes[0].decision,
            Some(blocking.decide(Input(42)))
        );
    }

    #[test]
    fn ablation_small_max_stage_still_terminates() {
        let inputs = [Input(1), Input(2)];
        let report = run(
            crate::machines::staged_with_max_stage(&inputs, 1, 1),
            Heap::new(1, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        );
        assert!(report.completed);
    }

    #[test]
    fn snapshot_distinguishes_progress() {
        let mut a = StagedMachine::new(Input(1), 1, 1);
        let b = StagedMachine::new(Input(1), 1, 1);
        assert_eq!(a.snapshot(), b.snapshot());
        a.apply(OpResult::Cas { old: BOTTOM });
        assert_ne!(a.snapshot(), b.snapshot());
    }
}
