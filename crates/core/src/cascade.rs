//! Figure 2: the `f`-tolerant construction from `f + 1` CAS objects
//! (Theorem 5).
//!
//! ```text
//! decide(val):
//!   output ← val
//!   for i = 0 to f do
//!     old ← CAS(O_i, ⊥, output)
//!     if (old ≠ ⊥) then output ← old
//!   return output
//! ```
//!
//! With at most `f` faulty objects (each possibly faulting unboundedly),
//! at least one object `O_j` is reliable; the first value `x` written to
//! `O_j` sticks, every process adopts `x` there, and from then on every
//! process carries `x` through the remaining objects — so all return `x`.

use crate::protocol::Consensus;
use ff_cas::CasEnsemble;
use ff_spec::{Input, ObjectId, Tolerance, BOTTOM};
use std::sync::Arc;

/// The Figure 2 protocol over `f + 1` CAS objects.
pub struct CascadeConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
    f: usize,
}

impl<E: CasEnsemble + ?Sized> CascadeConsensus<E> {
    /// Build the `f`-tolerant protocol; `ensemble` must hold exactly
    /// `f + 1` objects.
    pub fn new(ensemble: Arc<E>, f: usize) -> Self {
        assert_eq!(
            ensemble.len(),
            f + 1,
            "Theorem 5 construction needs exactly f + 1 = {} objects, got {}",
            f + 1,
            ensemble.len()
        );
        CascadeConsensus { ensemble, f }
    }

    /// The tolerated number of faulty objects.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl<E: CasEnsemble + ?Sized> Consensus for CascadeConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        let mut output = val;
        for i in 0..=self.f {
            let old = self.ensemble.cas(ObjectId(i), BOTTOM, output.to_word());
            if old != BOTTOM {
                output = Input::from_word(old).expect("cascade cells hold ⊥ or input values only");
            }
        }
        output
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::f_tolerant(self.f as u64)
    }

    fn objects_used(&self) -> usize {
        self.f + 1
    }

    fn name(&self) -> &'static str {
        "fig2-cascade"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_cas::{AlwaysPolicy, AtomicCasArray, FaultyCasArray, ProbabilisticPolicy};
    use ff_spec::{check_consensus, Bound, Outcome, ProcessId};

    fn check(decisions: &[(u32, Input)]) {
        let outcomes: Vec<Outcome> = decisions
            .iter()
            .enumerate()
            .map(|(i, &(input, d))| Outcome {
                process: ProcessId(i),
                input: Input(input),
                decision: Some(d),
                steps: 1,
            })
            .collect();
        let verdict = check_consensus(&outcomes, None);
        assert!(verdict.ok(), "{:?}", verdict.violations);
    }

    #[test]
    fn fault_free_agreement() {
        let c = CascadeConsensus::new(Arc::new(AtomicCasArray::new(3)), 2);
        let d: Vec<(u32, Input)> = (0..5).map(|i| (i, c.decide(Input(i)))).collect();
        check(&d);
        assert_eq!(d[0].1, Input(0));
    }

    #[test]
    fn tolerates_f_greedy_unbounded_faulty_objects() {
        // f = 2 faulty objects (greedy, unbounded), f + 1 = 3 objects.
        for seed in 0..50 {
            let ensemble = Arc::new(
                FaultyCasArray::builder(3)
                    .faulty_first(2)
                    .per_object(Bound::Unbounded)
                    .policy(AlwaysPolicy)
                    .build(),
            );
            let c = Arc::new(CascadeConsensus::new(ensemble, 2));
            let decisions: Vec<(u32, Input)> = std::thread::scope(|s| {
                (0..4u32)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || (seed * 10 + i, c.decide(Input(seed * 10 + i))))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            check(&decisions);
        }
    }

    #[test]
    fn tolerates_probabilistic_faults() {
        for seed in 0..30 {
            let ensemble = Arc::new(
                FaultyCasArray::builder(2)
                    .faulty_first(1)
                    .per_object(Bound::Unbounded)
                    .policy(ProbabilisticPolicy::new(0.5, seed))
                    .build(),
            );
            let c = Arc::new(CascadeConsensus::new(ensemble, 1));
            let decisions: Vec<(u32, Input)> = std::thread::scope(|s| {
                (0..6u32)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || (i, c.decide(Input(i))))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            check(&decisions);
        }
    }

    #[test]
    fn all_objects_faulty_can_break_it() {
        // Sanity (Theorem 18 direction): with all f + 1 objects faulty the
        // guarantee is void. Sequential schedule: p0 decides; p1 overrides
        // every object; p2 then adopts p1's value.
        let ensemble = Arc::new(
            FaultyCasArray::builder(2)
                .faulty_first(2)
                .per_object(Bound::Unbounded)
                .policy(AlwaysPolicy)
                .build(),
        );
        let c = CascadeConsensus::new(ensemble, 1);
        let d0 = c.decide(Input(10));
        let d1 = c.decide(Input(20));
        let d2 = c.decide(Input(30));
        assert_eq!(d0, Input(10));
        // p1's faulty CASes return 10 both times, so p1 still agrees...
        assert_eq!(d1, Input(10));
        // ...but it *overrode* both objects with 10? No: it adopts 10 at
        // O_0 and then writes 10 onward — the cells hold 10 and p2 agrees
        // too. Overriding faults carrying the *same* value are harmless;
        // the breakage needs interleaving (exercised by the sim explorer
        // in the adversary crate). Here we only assert no panic and
        // validity.
        for d in [d0, d1, d2] {
            assert!([Input(10), Input(20), Input(30)].contains(&d));
        }
    }

    #[test]
    #[should_panic(expected = "f + 1")]
    fn wrong_object_count_panics() {
        let _ = CascadeConsensus::new(Arc::new(AtomicCasArray::new(2)), 2);
    }

    #[test]
    fn metadata() {
        let c = CascadeConsensus::new(Arc::new(AtomicCasArray::new(4)), 3);
        assert_eq!(c.objects_used(), 4);
        assert_eq!(c.f(), 3);
        assert_eq!(c.tolerance(), Tolerance::f_tolerant(3));
        assert_eq!(c.name(), "fig2-cascade");
    }
}
