//! The silent-fault retry protocol (Section 3.4).
//!
//! A silent fault suppresses the write of a matching CAS while still
//! reporting the old value — so a successful write and a silently dropped
//! one are indistinguishable to the caller. The fix, per the paper: "each
//! process can execute the original protocol [Herlihy's] until one
//! process succeeds and an output is chosen". A process keeps CASing
//! `(⊥ → val)`: once any write actually lands, every subsequent CAS
//! returns a non-`⊥` value, which is the decision. With at most `T`
//! silent faults in total the loop ends within `T + 2` iterations; with
//! unbounded faults an adversary can starve it forever — the paper's
//! nontermination claim, checked mechanically in experiment E8.

use crate::protocol::Consensus;
use ff_cas::CasEnsemble;
use ff_spec::{Bound, Input, ObjectId, Tolerance, BOTTOM};
use std::sync::Arc;

/// Herlihy-with-retries, tolerant of a bounded total number of silent
/// faults on its single object.
pub struct SilentRetryConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
    /// Total silent-fault bound the construction is declared for.
    t: u64,
    /// Retry cap: `t + 2` suffices within tolerance; we add headroom so an
    /// out-of-contract run fails loudly instead of looping silently.
    retry_cap: u64,
}

impl<E: CasEnsemble + ?Sized> SilentRetryConsensus<E> {
    /// Build over object 0 of `ensemble`, tolerating at most `t` silent
    /// faults in total.
    pub fn new(ensemble: Arc<E>, t: u64) -> Self {
        assert!(!ensemble.is_empty(), "needs one CAS object");
        SilentRetryConsensus {
            ensemble,
            t,
            retry_cap: t.saturating_add(16),
        }
    }
}

impl<E: CasEnsemble + ?Sized> Consensus for SilentRetryConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        for _ in 0..self.retry_cap {
            let old = self.ensemble.cas(ObjectId(0), BOTTOM, val.to_word());
            if old != BOTTOM {
                return Input::from_word(old)
                    .expect("silent-retry cell holds ⊥ or input values only");
            }
            // old = ⊥: either our write landed (the next CAS will observe
            // it) or it was silently dropped (retry).
        }
        panic!(
            "silent-retry protocol exceeded its retry cap ({}): more than t = {} silent faults?",
            self.retry_cap, self.t
        );
    }

    fn tolerance(&self) -> Tolerance {
        // One object, at most t (silent) faults, any number of processes.
        Tolerance::ft(1, Bound::Finite(self.t))
    }

    fn objects_used(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "silent-retry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_cas::{AtomicCasArray, FaultyCasArray, FirstKPolicy};
    use ff_spec::FaultKind;

    #[test]
    fn fault_free_agreement() {
        let c = SilentRetryConsensus::new(Arc::new(AtomicCasArray::new(1)), 3);
        assert_eq!(c.decide(Input(5)), Input(5));
        assert_eq!(c.decide(Input(9)), Input(5));
    }

    #[test]
    fn rides_out_bounded_silent_faults() {
        // The first 3 matching CASes are silently dropped; retries win.
        let t = 3u64;
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .kind(FaultKind::Silent)
                .faulty_first(1)
                .per_object(Bound::Finite(t))
                .policy(FirstKPolicy::new(t))
                .build(),
        );
        let c = SilentRetryConsensus::new(Arc::clone(&ensemble), t);
        assert_eq!(c.decide(Input(7)), Input(7));
        assert_eq!(c.decide(Input(8)), Input(7));
        assert_eq!(ensemble.stats().total_observable(), t);
    }

    #[test]
    fn concurrent_with_silent_faults() {
        for _ in 0..50 {
            let t = 2u64;
            let ensemble = Arc::new(
                FaultyCasArray::builder(1)
                    .kind(FaultKind::Silent)
                    .faulty_first(1)
                    .per_object(Bound::Finite(t))
                    .policy(FirstKPolicy::new(t))
                    .build(),
            );
            let c = Arc::new(SilentRetryConsensus::new(ensemble, t));
            let decisions: Vec<Input> = std::thread::scope(|s| {
                (0..4u32)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || c.decide(Input(i)))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
        }
    }

    #[test]
    #[should_panic(expected = "retry cap")]
    fn unbounded_silent_faults_trip_the_cap() {
        // Declare t = 1 but inject far more: the loop cannot terminate by
        // deciding and must fail loudly — the mechanical face of the
        // paper's nontermination claim for unbounded silent faults.
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .kind(FaultKind::Silent)
                .faulty_first(1)
                .per_object(Bound::Unbounded)
                .policy(ff_cas::AlwaysPolicy)
                .build(),
        );
        let c = SilentRetryConsensus::new(ensemble, 1);
        let _ = c.decide(Input(1));
    }

    #[test]
    fn metadata() {
        let c = SilentRetryConsensus::new(Arc::new(AtomicCasArray::new(1)), 4);
        assert_eq!(c.objects_used(), 1);
        assert_eq!(c.name(), "silent-retry");
        assert_eq!(c.tolerance().t, Bound::Finite(4));
    }
}
