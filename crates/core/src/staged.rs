//! Figure 3: the `(f, t, f+1)`-tolerant construction from `f` CAS objects,
//! **all of which may be faulty** (Theorem 6).
//!
//! The execution is divided into `maxStage + 1` stages with
//! `maxStage = t · (4f + f²)`. In each ordinary stage a process sweeps
//! `O_0 … O_{f-1}`, CASing its current estimate `⟨output, s⟩` in; on a
//! failed CAS it either adopts the newer value it found (when
//! `old.stage ≥ s`) or retries with the observed content as the new
//! expectation. Because at most `t · f` faults can occur while the
//! protocol executes `maxStage` stages of at least `f` writes each, some
//! window of `4f + f²` consecutive writes is fault-free, and the proof's
//! claims 7–17 show every process leaves that window carrying the same
//! value. The final stage funnels `⟨output, maxStage⟩` into `O_0`.
//!
//! This beats the data-fault impossibility of Afek et al. — consensus
//! from *faulty-only* objects — which is the paper's headline separation
//! between functional and data faults.

use crate::protocol::Consensus;
use crate::stage_value::{max_stage, StageValue};
use ff_cas::CasEnsemble;
use ff_spec::{Bound, Input, ObjectId, Tolerance, Word, BOTTOM};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Iteration guard on the inner retry loops: within tolerance the proof
/// bounds retries, so tripping this indicates an out-of-contract
/// execution (more faults than budgeted, or more than `f + 1` processes).
const RETRY_GUARD: u64 = 100_000_000;

/// The Figure 3 protocol over `f` (possibly all faulty) CAS objects.
pub struct StagedConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
    f: u64,
    t: u64,
    max_stage: u32,
    participants: AtomicUsize,
}

impl<E: CasEnsemble + ?Sized> StagedConsensus<E> {
    /// Build the `(f, t, f+1)`-tolerant protocol; `ensemble` must hold
    /// exactly `f ≥ 1` objects, and `t ≥ 1` bounds the faults per object.
    pub fn new(ensemble: Arc<E>, f: u64, t: u64) -> Self {
        assert!(f >= 1, "Theorem 6 needs f ∈ ℕ⁺");
        assert!(t >= 1, "Theorem 6 needs t ∈ ℕ⁺");
        assert_eq!(
            ensemble.len() as u64,
            f,
            "Theorem 6 construction uses exactly f = {f} objects, got {}",
            ensemble.len()
        );
        StagedConsensus {
            ensemble,
            f,
            t,
            max_stage: max_stage(f, t),
            participants: AtomicUsize::new(0),
        }
    }

    /// The stage bound `t · (4f + f²)` in force.
    pub fn max_stage(&self) -> u32 {
        self.max_stage
    }

    /// Override the stage bound (ablation benches: the paper notes the
    /// proven bound is conservative). Out-of-spec values void the
    /// tolerance guarantee; correctness is then *measured*, not promised.
    pub fn with_max_stage(mut self, max_stage: u32) -> Self {
        assert!(max_stage >= 1, "need at least one stage");
        self.max_stage = max_stage;
        self
    }

    /// Line 17 of Figure 3: `exp.stage ← s`, with `⊥` left as `⊥`.
    fn retarget_stage(exp: Word, s: u32) -> Word {
        match StageValue::unpack(exp) {
            None => BOTTOM,
            Some(sv) => StageValue::new(sv.val, s).pack(),
        }
    }
}

impl<E: CasEnsemble + ?Sized> Consensus for StagedConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        let joined = self.participants.fetch_add(1, Ordering::Relaxed) as u64;
        assert!(
            joined <= self.f,
            "StagedConsensus is (f, t, f+1)-tolerant: at most f + 1 = {} participants (Theorem 19 \
             shows f + 2 processes are impossible with f objects)",
            self.f + 1
        );

        let mut output = val;
        let mut exp: Word = BOTTOM;
        let mut s: u32 = 0;
        let mut guard = 0u64;

        // Lines 3–18: the maxStage ordinary stages.
        while s < self.max_stage {
            for i in 0..self.f as usize {
                loop {
                    guard += 1;
                    assert!(guard < RETRY_GUARD, "staged protocol retry guard tripped");
                    let old =
                        self.ensemble
                            .cas(ObjectId(i), exp, StageValue::new(output, s).pack());
                    if old != exp {
                        if StageValue::stage_of(old) >= s as i64 {
                            // Another process is at our stage or later:
                            // adopt its value and stage (lines 9–13).
                            let sv = StageValue::unpack(old)
                                .expect("stage ≥ s ≥ 0 implies a non-⊥ pair");
                            output = sv.val;
                            s = sv.stage;
                            if s == self.max_stage {
                                return output; // line 12
                            }
                            // Line 13 (immediately retargeted by line 17
                            // below, so only the value part survives).
                            exp = StageValue::new(sv.val, sv.stage.saturating_sub(1)).pack();
                            break; // line 14: no need to update O_i
                        } else {
                            exp = old; // line 15: still needs to update O_i
                        }
                    } else {
                        break; // line 16: successful CAS
                    }
                }
                exp = Self::retarget_stage(exp, s); // line 17
            }
            s += 1; // line 18
        }

        // Lines 19–23: the final stage funnels into O_0.
        loop {
            guard += 1;
            assert!(
                guard < RETRY_GUARD,
                "staged protocol final-stage guard tripped"
            );
            let old = self.ensemble.cas(
                ObjectId(0),
                exp,
                StageValue::new(output, self.max_stage).pack(),
            );
            if old != exp && StageValue::stage_of(old) < self.max_stage as i64 {
                exp = old; // line 22
            } else {
                break; // line 23
            }
        }
        output // line 24
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::new(self.f, Bound::Finite(self.t), Bound::Finite(self.f + 1))
    }

    fn objects_used(&self) -> usize {
        self.f as usize
    }

    fn name(&self) -> &'static str {
        "fig3-staged"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_cas::{AlwaysPolicy, AtomicCasArray, FaultyCasArray, ProbabilisticPolicy};
    use ff_spec::{check_consensus, Outcome, ProcessId};

    fn check(decisions: &[(u32, Input)]) {
        let outcomes: Vec<Outcome> = decisions
            .iter()
            .enumerate()
            .map(|(i, &(input, d))| Outcome {
                process: ProcessId(i),
                input: Input(input),
                decision: Some(d),
                steps: 1,
            })
            .collect();
        let verdict = check_consensus(&outcomes, None);
        assert!(verdict.ok(), "{:?}", verdict.violations);
    }

    #[test]
    fn solo_run_decides_own_input() {
        let c = StagedConsensus::new(Arc::new(AtomicCasArray::new(2)), 2, 1);
        assert_eq!(c.decide(Input(7)), Input(7));
    }

    #[test]
    fn sequential_fault_free_agreement() {
        let c = StagedConsensus::new(Arc::new(AtomicCasArray::new(2)), 2, 1);
        let d0 = c.decide(Input(10));
        let d1 = c.decide(Input(20));
        let d2 = c.decide(Input(30));
        check(&[(10, d0), (20, d1), (30, d2)]);
        assert_eq!(d0, Input(10));
    }

    #[test]
    fn concurrent_fault_free_agreement() {
        for _ in 0..30 {
            let c = Arc::new(StagedConsensus::new(Arc::new(AtomicCasArray::new(3)), 3, 2));
            let decisions: Vec<(u32, Input)> = std::thread::scope(|s| {
                (0..4u32)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || (i, c.decide(Input(i))))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            check(&decisions);
        }
    }

    #[test]
    fn all_objects_faulty_bounded_t_agreement() {
        // The headline: f objects, ALL faulty, t bounded, n = f + 1.
        for seed in 0..40 {
            let f = 2u64;
            let t = 2u64;
            let ensemble = Arc::new(
                FaultyCasArray::builder(f as usize)
                    .faulty_first(f as usize)
                    .per_object(Bound::Finite(t))
                    .policy(ProbabilisticPolicy::new(0.3, seed))
                    .build(),
            );
            let c = Arc::new(StagedConsensus::new(ensemble.clone(), f, t));
            let decisions: Vec<(u32, Input)> = std::thread::scope(|s| {
                (0..=f as u32)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || (100 + i, c.decide(Input(100 + i))))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            check(&decisions);
            // The execution stayed within the declared tolerance.
            let h = ensemble.history();
            assert!(h.max_faults_per_object() <= t);
            assert!(h.faulty_object_count() <= f);
        }
    }

    #[test]
    fn greedy_front_loaded_faults_agreement() {
        // AlwaysPolicy burns the whole budget at the first opportunities —
        // the bounded-burst adversary.
        for f in 1..=3u64 {
            for t in 1..=2u64 {
                let ensemble = Arc::new(
                    FaultyCasArray::builder(f as usize)
                        .faulty_first(f as usize)
                        .per_object(Bound::Finite(t))
                        .policy(AlwaysPolicy)
                        .build(),
                );
                let c = Arc::new(StagedConsensus::new(ensemble, f, t));
                let decisions: Vec<(u32, Input)> = std::thread::scope(|s| {
                    (0..=f as u32)
                        .map(|i| {
                            let c = Arc::clone(&c);
                            s.spawn(move || (i, c.decide(Input(i))))
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(|h| h.join().unwrap())
                        .collect()
                });
                check(&decisions);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most f + 1")]
    fn too_many_participants_rejected() {
        let c = StagedConsensus::new(Arc::new(AtomicCasArray::new(1)), 1, 1);
        c.decide(Input(0));
        c.decide(Input(1));
        c.decide(Input(2));
    }

    #[test]
    #[should_panic(expected = "exactly f")]
    fn wrong_object_count_panics() {
        let _ = StagedConsensus::new(Arc::new(AtomicCasArray::new(3)), 2, 1);
    }

    #[test]
    fn metadata_and_max_stage() {
        let c = StagedConsensus::new(Arc::new(AtomicCasArray::new(2)), 2, 3);
        assert_eq!(c.max_stage(), 36); // 3 · (8 + 4)
        assert_eq!(c.objects_used(), 2);
        assert_eq!(c.tolerance(), Tolerance::new(2, 3, 3));
        let c = c.with_max_stage(5);
        assert_eq!(c.max_stage(), 5);
    }
}
