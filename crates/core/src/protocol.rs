//! The blocking consensus-protocol interface for native execution.

use ff_spec::{Input, Tolerance};

/// A wait-free consensus protocol over a CAS ensemble.
///
/// `decide` may be called once per participating process (from any
/// thread); every call returns the single agreed value, which is some
/// caller's input — provided the execution stays within the protocol's
/// documented [`Consensus::tolerance`].
pub trait Consensus: Send + Sync {
    /// Run this process's consensus protocol with input `val` and return
    /// the decided value.
    fn decide(&self, val: Input) -> Input;

    /// The `(f, t, n)`-tolerance this construction guarantees.
    fn tolerance(&self) -> Tolerance;

    /// Number of CAS objects the construction uses.
    fn objects_used(&self) -> usize;

    /// A short human-readable name (for reports and tables).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_spec::Bound;

    struct Fixed;
    impl Consensus for Fixed {
        fn decide(&self, _val: Input) -> Input {
            Input(7)
        }
        fn tolerance(&self) -> Tolerance {
            Tolerance::new(0, 0, Bound::Unbounded)
        }
        fn objects_used(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn trait_object_usable() {
        let c: Box<dyn Consensus> = Box::new(Fixed);
        assert_eq!(c.decide(Input(1)), Input(7));
        assert_eq!(c.objects_used(), 0);
        assert_eq!(c.name(), "fixed");
    }
}
