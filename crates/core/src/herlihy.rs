//! The baseline: Herlihy's single-CAS consensus (Section 2).
//!
//! The object is initialized to `⊥`; every process CASes its input in,
//! expecting `⊥`; exactly one succeeds, and everyone returns the object's
//! first written value. Correct for any number of processes **when the
//! CAS object is reliable** — a single overriding fault breaks it for
//! `n ≥ 3` (experiment E9), which is what motivates the paper's
//! constructions.

use crate::protocol::Consensus;
use ff_cas::CasEnsemble;
use ff_spec::{Bound, Input, ObjectId, Tolerance, BOTTOM};
use std::sync::Arc;

/// Herlihy's consensus from one CAS object.
pub struct HerlihyConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
    object: ObjectId,
}

impl<E: CasEnsemble + ?Sized> HerlihyConsensus<E> {
    /// Build over object 0 of `ensemble` (which must have ≥ 1 object).
    pub fn new(ensemble: Arc<E>) -> Self {
        Self::on_object(ensemble, ObjectId(0))
    }

    /// Build over a specific object of `ensemble`.
    pub fn on_object(ensemble: Arc<E>, object: ObjectId) -> Self {
        assert!(object.0 < ensemble.len(), "object {object} out of range");
        HerlihyConsensus { ensemble, object }
    }
}

impl<E: CasEnsemble + ?Sized> Consensus for HerlihyConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        let old = self.ensemble.cas(self.object, BOTTOM, val.to_word());
        match Input::from_word(old) {
            // Someone wrote first: their value is the decision.
            Some(winner) => winner,
            // The object held ⊥: our write chose the value.
            None => val,
        }
    }

    fn tolerance(&self) -> Tolerance {
        // Reliable objects only — but for any number of processes.
        Tolerance::new(0, 0, Bound::Unbounded)
    }

    fn objects_used(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "herlihy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_cas::{AlwaysPolicy, AtomicCasArray, FaultyCasArray};
    use ff_spec::check_consensus;
    use ff_spec::Outcome;
    use ff_spec::ProcessId;

    fn outcomes_of(decisions: &[(u32, Input)]) -> Vec<Outcome> {
        decisions
            .iter()
            .enumerate()
            .map(|(i, &(input, decision))| Outcome {
                process: ProcessId(i),
                input: Input(input),
                decision: Some(decision),
                steps: 1,
            })
            .collect()
    }

    #[test]
    fn sequential_agreement() {
        let c = HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1)));
        let d0 = c.decide(Input(10));
        let d1 = c.decide(Input(20));
        assert_eq!(d0, Input(10));
        assert_eq!(d1, Input(10));
    }

    #[test]
    fn concurrent_agreement_fault_free() {
        let c = Arc::new(HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1))));
        let decisions: Vec<(u32, Input)> = std::thread::scope(|s| {
            (0..8u32)
                .map(|i| {
                    let c = Arc::clone(&c);
                    s.spawn(move || (i, c.decide(Input(i))))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let verdict = check_consensus(&outcomes_of(&decisions), None);
        assert!(verdict.ok(), "{:?}", verdict.violations);
    }

    #[test]
    fn a_single_override_breaks_it_sequentially() {
        // p0 decides 10. A later overriding CAS by p1 replaces the value;
        // p2 then reads p1's value: disagreement (E9's essence).
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .faulty_first(1)
                .per_object(Bound::Finite(1))
                .policy(AlwaysPolicy)
                .build(),
        );
        let c = HerlihyConsensus::new(Arc::clone(&ensemble));
        let d0 = c.decide(Input(10)); // correct success (match) — refunded
        let d1 = c.decide(Input(20)); // overriding fault: writes 20, returns 10
        let d2 = c.decide(Input(30)); // budget spent: correct, reads 20
        assert_eq!(d0, Input(10));
        assert_eq!(d1, Input(10), "the fault's output is still correct");
        assert_eq!(d2, Input(20), "but the override corrupted the decision");
        let verdict = check_consensus(&outcomes_of(&[(10, d0), (20, d1), (30, d2)]), None);
        assert!(!verdict.ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn needs_an_object() {
        let _ = HerlihyConsensus::new(Arc::new(AtomicCasArray::new(0)));
    }

    #[test]
    fn metadata() {
        let c = HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1)));
        assert_eq!(c.objects_used(), 1);
        assert_eq!(c.name(), "herlihy");
        assert_eq!(c.tolerance().f, 0);
    }
}
