//! Construction selection: which of the paper's protocols fits a desired
//! `(f, t, n)` tolerance, and with how many CAS objects.
//!
//! The decision procedure mirrors Section 4's case analysis:
//!
//! * no faults → Herlihy's single object;
//! * `n ≤ 2` → Figure 1 (one object, any number of overriding faults);
//! * `t` unbounded, or more than `f + 1` processes → Figure 2
//!   (`f + 1` objects, one guaranteed reliable);
//! * `t` bounded and `n ≤ f + 1` → Figure 3 (`f` objects, all possibly
//!   faulty — the resource-saving case that beats the data-fault bound).

use crate::cascade::CascadeConsensus;
use crate::herlihy::HerlihyConsensus;
use crate::protocol::Consensus;
use crate::staged::StagedConsensus;
use crate::two_process::TwoProcessConsensus;
use ff_cas::CasEnsemble;
use ff_spec::{Bound, Tolerance};
use std::sync::Arc;

/// Which construction to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// Herlihy's single reliable CAS (Section 2).
    Herlihy,
    /// Figure 1: one object, two processes.
    TwoProcess,
    /// Figure 2: `f + 1` objects.
    Cascade,
    /// Figure 3: `f` objects, bounded faults.
    Staged,
}

/// A construction recommendation for a requested tolerance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Recommendation {
    /// The chosen construction.
    pub kind: ProtocolKind,
    /// CAS objects it needs.
    pub objects: usize,
    /// The tolerance it guarantees (at least the requested one).
    pub tolerance: Tolerance,
}

/// Choose a construction guaranteeing `(f, t, n)`-tolerant consensus
/// against overriding faults.
pub fn recommend(f: u64, t: Bound, n: Bound) -> Recommendation {
    if f == 0 {
        return Recommendation {
            kind: ProtocolKind::Herlihy,
            objects: 1,
            tolerance: Tolerance::new(0, 0, Bound::Unbounded),
        };
    }
    if n <= Bound::Finite(2) {
        // Theorem 4: one (possibly faulty) object suffices for n = 2.
        return Recommendation {
            kind: ProtocolKind::TwoProcess,
            objects: 1,
            tolerance: Tolerance::new(f, Bound::Unbounded, 2),
        };
    }
    match t {
        Bound::Finite(t_val) if t_val >= 1 && n <= Bound::Finite(f + 1) => {
            // Theorem 6: f objects suffice when n ≤ f + 1.
            Recommendation {
                kind: ProtocolKind::Staged,
                objects: f as usize,
                tolerance: Tolerance::new(f, t_val, f + 1),
            }
        }
        _ => {
            // Theorem 5: f + 1 objects for unbounded t or larger n —
            // optimal by Theorems 18/19.
            Recommendation {
                kind: ProtocolKind::Cascade,
                objects: (f + 1) as usize,
                tolerance: Tolerance::f_tolerant(f),
            }
        }
    }
}

/// Instantiate a recommendation over an ensemble (which must have exactly
/// `rec.objects` objects). `f`/`t` must be the values the recommendation
/// was computed from.
pub fn build<E: CasEnsemble + 'static>(
    rec: Recommendation,
    ensemble: Arc<E>,
    f: u64,
    t: Bound,
) -> Arc<dyn Consensus> {
    match rec.kind {
        ProtocolKind::Herlihy => Arc::new(HerlihyConsensus::new(ensemble)),
        ProtocolKind::TwoProcess => Arc::new(TwoProcessConsensus::new(ensemble)),
        ProtocolKind::Cascade => Arc::new(CascadeConsensus::new(ensemble, f as usize)),
        ProtocolKind::Staged => {
            let t = t.finite().expect("staged recommendation implies finite t");
            Arc::new(StagedConsensus::new(ensemble, f, t))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_cas::AtomicCasArray;
    use ff_spec::Input;

    #[test]
    fn no_faults_herlihy() {
        let r = recommend(0, Bound::Finite(0), Bound::Unbounded);
        assert_eq!(r.kind, ProtocolKind::Herlihy);
        assert_eq!(r.objects, 1);
    }

    #[test]
    fn two_processes_one_object() {
        let r = recommend(5, Bound::Unbounded, Bound::Finite(2));
        assert_eq!(r.kind, ProtocolKind::TwoProcess);
        assert_eq!(r.objects, 1);
    }

    #[test]
    fn unbounded_t_cascade() {
        let r = recommend(3, Bound::Unbounded, Bound::Unbounded);
        assert_eq!(r.kind, ProtocolKind::Cascade);
        assert_eq!(r.objects, 4);
    }

    #[test]
    fn bounded_t_few_processes_staged() {
        let r = recommend(3, Bound::Finite(2), Bound::Finite(4));
        assert_eq!(r.kind, ProtocolKind::Staged);
        assert_eq!(r.objects, 3, "saves one object vs the cascade");
    }

    #[test]
    fn bounded_t_many_processes_cascade() {
        // n > f + 1: Theorem 19 forbids f objects; fall back to f + 1.
        let r = recommend(3, Bound::Finite(2), Bound::Finite(5));
        assert_eq!(r.kind, ProtocolKind::Cascade);
        assert_eq!(r.objects, 4);
    }

    #[test]
    fn recommendations_meet_requests() {
        for f in 0..4u64 {
            for t in [Bound::Finite(1), Bound::Finite(3), Bound::Unbounded] {
                for n in [Bound::Finite(2), Bound::Finite(f + 1), Bound::Unbounded] {
                    let requested = Tolerance { f, t, n };
                    let r = recommend(f, t, n);
                    assert!(
                        requested.subsumed_by(&r.tolerance),
                        "request {requested} not covered by {:?}",
                        r
                    );
                }
            }
        }
    }

    #[test]
    fn build_constructs_each_kind() {
        for (f, t, n) in [
            (0, Bound::Finite(0), Bound::Unbounded),
            (2, Bound::Unbounded, Bound::Finite(2)),
            (2, Bound::Unbounded, Bound::Unbounded),
            (2, Bound::Finite(1), Bound::Finite(3)),
        ] {
            let rec = recommend(f, t, n);
            let ensemble = Arc::new(AtomicCasArray::new(rec.objects));
            let protocol = build(rec, ensemble, f, t);
            assert_eq!(protocol.objects_used(), rec.objects);
            assert_eq!(protocol.decide(Input(9)), Input(9));
        }
    }
}
