//! Native-thread execution harness: spawn one OS thread per process, run
//! `decide`, collect outcomes with a deadline.
//!
//! Threads are detached rather than joined so that nonresponsive faults
//! (whose CAS never returns, Section 3.4) show up as missing outcomes —
//! an operational wait-freedom violation — instead of hanging the
//! harness.

use crate::protocol::Consensus;
use ff_cas::set_thread_process_id;
use ff_spec::{check_consensus, ConsensusVerdict, Input, Outcome, ProcessId};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The result of one native execution.
#[derive(Clone, Debug)]
pub struct NativeRunReport {
    /// Per-process outcomes (missing decisions are `None`).
    pub outcomes: Vec<Outcome>,
    /// The consensus verdict over the outcomes.
    pub verdict: ConsensusVerdict,
    /// Wall-clock time from first spawn to last collection.
    pub elapsed: Duration,
}

impl NativeRunReport {
    /// `true` iff the execution satisfied consensus.
    pub fn ok(&self) -> bool {
        self.verdict.ok()
    }
}

/// Run `protocol.decide` concurrently with the given inputs, one thread
/// per process, collecting decisions until `timeout`.
pub fn run_native(
    protocol: Arc<dyn Consensus>,
    inputs: &[Input],
    timeout: Duration,
) -> NativeRunReport {
    let start = Instant::now();
    let (tx, rx) = mpsc::channel::<(usize, Input)>();

    for (i, &input) in inputs.iter().enumerate() {
        let protocol = Arc::clone(&protocol);
        let tx = tx.clone();
        std::thread::spawn(move || {
            set_thread_process_id(ProcessId(i));
            let decision = protocol.decide(input);
            let _ = tx.send((i, decision));
        });
    }
    drop(tx);

    let mut decisions: Vec<Option<Input>> = vec![None; inputs.len()];
    let deadline = start + timeout;
    let mut collected = 0;
    while collected < inputs.len() {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match rx.recv_timeout(deadline - now) {
            Ok((i, d)) => {
                decisions[i] = Some(d);
                collected += 1;
            }
            Err(_) => break, // timeout or all senders dropped (panicked)
        }
    }

    let outcomes: Vec<Outcome> = inputs
        .iter()
        .enumerate()
        .map(|(i, &input)| Outcome {
            process: ProcessId(i),
            input,
            decision: decisions[i],
            steps: 0,
        })
        .collect();
    let verdict = check_consensus(&outcomes, None);
    NativeRunReport {
        outcomes,
        verdict,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::CascadeConsensus;
    use crate::herlihy::HerlihyConsensus;
    use ff_cas::{AlwaysPolicy, AtomicCasArray, CasEnsemble, FaultyCasArray};
    use ff_spec::{Bound, FaultKind, ObjectId};

    #[test]
    fn herlihy_native_run_agrees() {
        let protocol: Arc<dyn Consensus> =
            Arc::new(HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1))));
        let inputs: Vec<Input> = (0..6).map(Input).collect();
        let report = run_native(protocol, &inputs, Duration::from_secs(5));
        assert!(report.ok(), "{:?}", report.verdict.violations);
        assert!(report.verdict.agreed.is_some());
    }

    #[test]
    fn cascade_native_run_under_faults() {
        let ensemble = Arc::new(
            FaultyCasArray::builder(3)
                .faulty_first(2)
                .per_object(Bound::Unbounded)
                .policy(AlwaysPolicy)
                .build(),
        );
        let protocol: Arc<dyn Consensus> = Arc::new(CascadeConsensus::new(ensemble, 2));
        let inputs: Vec<Input> = (10..15).map(Input).collect();
        let report = run_native(protocol, &inputs, Duration::from_secs(5));
        assert!(report.ok(), "{:?}", report.verdict.violations);
    }

    #[test]
    fn nonresponsive_fault_shows_as_missing_outcome() {
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .kind(FaultKind::Nonresponsive)
                .faulty_first(1)
                .per_object(Bound::Finite(1))
                .policy(AlwaysPolicy)
                .build(),
        );
        let protocol: Arc<dyn Consensus> = Arc::new(HerlihyConsensus::new(Arc::clone(&ensemble)));
        let inputs: Vec<Input> = (0..3).map(Input).collect();
        let report = run_native(protocol, &inputs, Duration::from_millis(500));
        // Exactly one process hung (budget t = 1); the others decided.
        let missing = report
            .outcomes
            .iter()
            .filter(|o| o.decision.is_none())
            .count();
        assert_eq!(missing, 1, "{:?}", report.outcomes);
        assert!(!report.ok());
        // Unblock check: the budget is spent, so a fresh CAS responds.
        let _ = ensemble.cas(ObjectId(0), ff_spec::BOTTOM, 1);
    }

    #[test]
    fn zero_processes_trivially_ok() {
        let protocol: Arc<dyn Consensus> =
            Arc::new(HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1))));
        let report = run_native(protocol, &[], Duration::from_millis(100));
        assert!(report.ok());
        assert!(report.outcomes.is_empty());
    }
}
