//! Figure 1: the `(f, ∞, 2)`-tolerant two-process protocol (Theorem 4).
//!
//! ```text
//! decide(val):
//!   old ← CAS(O, ⊥, val)
//!   if (old ≠ ⊥) then return old
//!   else return val
//! ```
//!
//! The code is Herlihy's protocol — the *anomaly* (Section 4.1) is that
//! with only two processes it tolerates **unbounded overriding faults on
//! its single object**: if the loser's CAS faults and overrides the
//! winner's value, the returned `old` is still the winner's value (the
//! overriding fault keeps outputs correct), so the loser adopts it; and
//! the winner has already returned. With three or more processes a third
//! CAS can read the overridden value — which is why this tolerance is
//! stated for `n = 2` only (and why Theorem 18 kills `n > 2`).

use crate::protocol::Consensus;
use ff_cas::CasEnsemble;
use ff_spec::{Bound, Input, ObjectId, Tolerance, BOTTOM};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The Figure 1 protocol: one CAS object, two processes, unbounded
/// overriding faults tolerated.
pub struct TwoProcessConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
    object: ObjectId,
    participants: AtomicUsize,
}

impl<E: CasEnsemble + ?Sized> TwoProcessConsensus<E> {
    /// Build over object 0 of `ensemble`.
    pub fn new(ensemble: Arc<E>) -> Self {
        assert!(!ensemble.is_empty(), "needs one CAS object");
        TwoProcessConsensus {
            ensemble,
            object: ObjectId(0),
            participants: AtomicUsize::new(0),
        }
    }
}

impl<E: CasEnsemble + ?Sized> Consensus for TwoProcessConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        let joined = self.participants.fetch_add(1, Ordering::Relaxed);
        assert!(
            joined < 2,
            "TwoProcessConsensus supports exactly two participants (Theorem 4 is for n = 2)"
        );
        let old = self.ensemble.cas(self.object, BOTTOM, val.to_word());
        match Input::from_word(old) {
            Some(other) => other,
            None => val,
        }
    }

    fn tolerance(&self) -> Tolerance {
        // (f, ∞, 2) for any f: the single object may fault unboundedly.
        Tolerance::new(u64::MAX, Bound::Unbounded, 2)
    }

    fn objects_used(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "fig1-two-process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_cas::{AlwaysPolicy, FaultyCasArray};

    fn faulty_ensemble() -> Arc<FaultyCasArray> {
        Arc::new(
            FaultyCasArray::builder(1)
                .faulty_first(1)
                .per_object(Bound::Unbounded)
                .policy(AlwaysPolicy)
                .build(),
        )
    }

    #[test]
    fn two_threads_agree_under_unbounded_overriding_faults() {
        for trial in 0..200 {
            let c = Arc::new(TwoProcessConsensus::new(faulty_ensemble()));
            let (a, b) = std::thread::scope(|s| {
                let c0 = Arc::clone(&c);
                let c1 = Arc::clone(&c);
                let h0 = s.spawn(move || c0.decide(Input(10)));
                let h1 = s.spawn(move || c1.decide(Input(20)));
                (h0.join().unwrap(), h1.join().unwrap())
            });
            assert_eq!(a, b, "trial {trial}: both processes must agree");
            assert!(a == Input(10) || a == Input(20), "validity");
        }
    }

    #[test]
    fn sequential_two_processes() {
        let c = TwoProcessConsensus::new(faulty_ensemble());
        let d0 = c.decide(Input(1));
        let d1 = c.decide(Input(2));
        assert_eq!(d0, Input(1));
        assert_eq!(d1, Input(1), "the second process adopts the first's value");
    }

    #[test]
    #[should_panic(expected = "exactly two participants")]
    fn third_participant_is_rejected() {
        let c = TwoProcessConsensus::new(faulty_ensemble());
        c.decide(Input(1));
        c.decide(Input(2));
        c.decide(Input(3));
    }

    #[test]
    fn metadata() {
        let c = TwoProcessConsensus::new(faulty_ensemble());
        assert_eq!(c.objects_used(), 1);
        assert_eq!(c.tolerance().n, Bound::Finite(2));
        assert!(c.tolerance().t.is_unbounded());
    }
}
