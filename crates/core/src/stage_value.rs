//! `⟨value, stage⟩` packing for the staged protocol (Figure 3).
//!
//! The paper's model gives each CAS *object* a single value, so the staged
//! protocol's pairs must fit one machine word for the native path to stay
//! a genuine single-word CAS. Layout: stage in bits 63..32, value in bits
//! 31..0. `⊥` is the all-ones word; stages are capped below `u32::MAX` so
//! no packed pair collides with it.

use ff_spec::{Input, Word, BOTTOM};

/// Maximum representable stage.
pub const MAX_STAGE: u32 = u32::MAX - 1;

/// A `⟨value, stage⟩` pair as stored in the staged protocol's cells.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StageValue {
    /// The carried decision estimate.
    pub val: Input,
    /// The stage it was written in.
    pub stage: u32,
}

impl StageValue {
    /// Construct, checking the stage cap.
    pub fn new(val: Input, stage: u32) -> Self {
        assert!(stage <= MAX_STAGE, "stage {stage} exceeds MAX_STAGE");
        StageValue { val, stage }
    }

    /// Pack into a word (never collides with `⊥`).
    #[inline]
    pub fn pack(self) -> Word {
        ((self.stage as Word) << 32) | self.val.0 as Word
    }

    /// Unpack a word; `None` for `⊥`.
    #[inline]
    pub fn unpack(w: Word) -> Option<Self> {
        if w == BOTTOM {
            return None;
        }
        Some(StageValue {
            val: Input((w & 0xFFFF_FFFF) as u32),
            stage: (w >> 32) as u32,
        })
    }

    /// The stage of a cell word, with `⊥` reading as "before every stage"
    /// (−1): the comparison `old.stage ≥ s` in Figure 3 line 8 is then
    /// false for `⊥`, which is the reading under which the protocol's
    /// retry path (line 15) handles not-yet-written objects.
    #[inline]
    pub fn stage_of(w: Word) -> i64 {
        match Self::unpack(w) {
            None => -1,
            Some(sv) => sv.stage as i64,
        }
    }
}

impl std::fmt::Display for StageValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}, {}⟩", self.val, self.stage)
    }
}

/// Figure 3's stage bound: `maxStage = t · (4f + f²)` (Theorem 6). The
/// paper notes an earlier cutoff might work; this is the proven one.
pub fn max_stage(f: u64, t: u64) -> u32 {
    let ms = t
        .checked_mul(4 * f + f * f)
        .expect("maxStage overflows u64");
    u32::try_from(ms).expect("maxStage exceeds representable stages")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trip() {
        for (v, s) in [(0u32, 0u32), (7, 3), (u32::MAX, 0), (0, MAX_STAGE)] {
            let sv = StageValue::new(Input(v), s);
            assert_eq!(StageValue::unpack(sv.pack()), Some(sv));
        }
    }

    #[test]
    fn bottom_is_not_a_pair() {
        assert_eq!(StageValue::unpack(BOTTOM), None);
        // Max legal pair still differs from ⊥.
        let top = StageValue::new(Input(u32::MAX), MAX_STAGE);
        assert_ne!(top.pack(), BOTTOM);
    }

    #[test]
    fn stage_of_reads_bottom_as_minus_one() {
        assert_eq!(StageValue::stage_of(BOTTOM), -1);
        assert_eq!(StageValue::stage_of(StageValue::new(Input(1), 5).pack()), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_STAGE")]
    fn stage_cap_enforced() {
        let _ = StageValue::new(Input(0), u32::MAX);
    }

    #[test]
    fn max_stage_formula() {
        // t · (4f + f²)
        assert_eq!(max_stage(1, 1), 5);
        assert_eq!(max_stage(2, 1), 12);
        assert_eq!(max_stage(2, 3), 36);
        assert_eq!(max_stage(3, 2), 42);
    }

    #[test]
    fn display() {
        assert_eq!(StageValue::new(Input(9), 2).to_string(), "⟨9, 2⟩");
    }
}
