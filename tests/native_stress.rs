//! Heavier native-thread stress: many trials, high contention, every
//! construction × its tolerated fault environment.

use functional_faults::cas::{
    AlwaysPolicy, CasEnsemble, EveryNthPolicy, FaultyCasArray, ProbabilisticPolicy,
};
use functional_faults::consensus::{
    run_native, CascadeConsensus, Consensus, SilentRetryConsensus, StagedConsensus,
    TwoProcessConsensus,
};
use functional_faults::spec::{Bound, FaultKind, Input, Tolerance};
use std::sync::Arc;
use std::time::Duration;

fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(|i| Input(1000 + i)).collect()
}

#[test]
fn fig1_stress_full_fault_rate() {
    for seed in 0..200 {
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .faulty_first(1)
                .per_object(Bound::Unbounded)
                .policy(ProbabilisticPolicy::new(1.0, seed))
                .record_history(false)
                .build(),
        );
        let protocol: Arc<dyn Consensus> = Arc::new(TwoProcessConsensus::new(ensemble));
        let report = run_native(protocol, &inputs(2), Duration::from_secs(5));
        assert!(report.ok(), "seed {seed}: {:?}", report.verdict.violations);
    }
}

#[test]
fn fig2_stress_every_policy() {
    type EnsembleMaker = Box<dyn Fn(u64) -> Arc<FaultyCasArray>>;
    let policies: Vec<(&str, EnsembleMaker)> = vec![
        (
            "always",
            Box::new(|_| {
                Arc::new(
                    FaultyCasArray::builder(4)
                        .faulty_first(3)
                        .per_object(Bound::Unbounded)
                        .policy(AlwaysPolicy)
                        .record_history(false)
                        .build(),
                )
            }),
        ),
        (
            "probabilistic",
            Box::new(|seed| {
                Arc::new(
                    FaultyCasArray::builder(4)
                        .faulty_first(3)
                        .per_object(Bound::Unbounded)
                        .policy(ProbabilisticPolicy::new(0.7, seed))
                        .record_history(false)
                        .build(),
                )
            }),
        ),
        (
            "every-2nd",
            Box::new(|_| {
                Arc::new(
                    FaultyCasArray::builder(4)
                        .faulty_first(3)
                        .per_object(Bound::Unbounded)
                        .policy(EveryNthPolicy::new(2))
                        .record_history(false)
                        .build(),
                )
            }),
        ),
    ];
    for (name, make) in policies {
        for seed in 0..40 {
            let protocol: Arc<dyn Consensus> = Arc::new(CascadeConsensus::new(make(seed), 3));
            let report = run_native(protocol, &inputs(6), Duration::from_secs(10));
            assert!(
                report.ok(),
                "{name} seed {seed}: {:?}",
                report.verdict.violations
            );
        }
    }
}

#[test]
fn fig3_stress_with_tolerance_audit() {
    for seed in 0..60 {
        let (f, t) = (2u64, 2u64);
        let ensemble = Arc::new(
            FaultyCasArray::builder(f as usize)
                .faulty_first(f as usize)
                .per_object(Bound::Finite(t))
                .policy(ProbabilisticPolicy::new(0.5, seed))
                .build(),
        );
        let protocol: Arc<dyn Consensus> =
            Arc::new(StagedConsensus::new(Arc::clone(&ensemble), f, t));
        let report = run_native(protocol, &inputs(f as usize + 1), Duration::from_secs(10));
        assert!(report.ok(), "seed {seed}: {:?}", report.verdict.violations);

        // Audit the recorded history against the declared tolerance.
        let history = ensemble.history();
        assert!(
            history.within(&Tolerance::new(f, t, f + 1)),
            "seed {seed}: execution left tolerance: {} faulty objects, max {} faults",
            history.faulty_object_count(),
            history.max_faults_per_object()
        );
    }
}

#[test]
fn silent_retry_stress() {
    for seed in 0..60 {
        let t = 4u64;
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .kind(FaultKind::Silent)
                .faulty_first(1)
                .per_object(Bound::Finite(t))
                .policy(ProbabilisticPolicy::new(0.6, seed))
                .record_history(false)
                .build(),
        );
        let protocol: Arc<dyn Consensus> = Arc::new(SilentRetryConsensus::new(ensemble, t));
        let report = run_native(protocol, &inputs(4), Duration::from_secs(10));
        assert!(report.ok(), "seed {seed}: {:?}", report.verdict.violations);
    }
}

#[test]
fn stats_and_history_agree_under_contention() {
    let ensemble = Arc::new(
        FaultyCasArray::builder(3)
            .faulty_first(2)
            .per_object(Bound::Finite(5))
            .policy(AlwaysPolicy)
            .build(),
    );
    std::thread::scope(|s| {
        for i in 0..6u64 {
            let e = Arc::clone(&ensemble);
            s.spawn(move || {
                for j in 0..50u64 {
                    let _ = e.cas(
                        functional_faults::spec::ObjectId((j % 3) as usize),
                        functional_faults::spec::BOTTOM,
                        1_000_000 + i * 100 + j,
                    );
                }
            });
        }
    });
    let history = ensemble.history();
    let stats = ensemble.stats();
    // Both accountings see the same per-object fault counts.
    let history_counts = history.fault_counts_per_object();
    for (obj, stat) in stats.all().iter().enumerate() {
        let from_history = history_counts
            .get(&functional_faults::spec::ObjectId(obj))
            .copied()
            .unwrap_or(0);
        assert_eq!(
            stat.observable_faults, from_history,
            "object {obj}: stats vs history mismatch"
        );
        assert!(stat.observable_faults <= 5, "budget exceeded on {obj}");
    }
    assert_eq!(
        history.len() as u64,
        stats.all().iter().map(|s| s.ops).sum::<u64>()
    );
}
