//! Heavier native-thread stress: many trials, high contention, every
//! construction × its tolerated fault environment.

use functional_faults::cas::{
    AlwaysPolicy, CasEnsemble, EveryNthPolicy, FaultyCasArray, ProbabilisticPolicy,
};
use functional_faults::consensus::{
    run_native, CascadeConsensus, Consensus, SilentRetryConsensus, StagedConsensus,
    TwoProcessConsensus,
};
use functional_faults::spec::{Bound, FaultKind, Input, Tolerance};
use functional_faults::store::{
    Backend, FaultConfig, Kv, Store, StoreClient, StoreConfig, StoreError,
};
use std::sync::Arc;
use std::time::Duration;

fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(|i| Input(1000 + i)).collect()
}

#[test]
fn fig1_stress_full_fault_rate() {
    for seed in 0..200 {
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .faulty_first(1)
                .per_object(Bound::Unbounded)
                .policy(ProbabilisticPolicy::new(1.0, seed))
                .record_history(false)
                .build(),
        );
        let protocol: Arc<dyn Consensus> = Arc::new(TwoProcessConsensus::new(ensemble));
        let report = run_native(protocol, &inputs(2), Duration::from_secs(5));
        assert!(report.ok(), "seed {seed}: {:?}", report.verdict.violations);
    }
}

#[test]
fn fig2_stress_every_policy() {
    type EnsembleMaker = Box<dyn Fn(u64) -> Arc<FaultyCasArray>>;
    let policies: Vec<(&str, EnsembleMaker)> = vec![
        (
            "always",
            Box::new(|_| {
                Arc::new(
                    FaultyCasArray::builder(4)
                        .faulty_first(3)
                        .per_object(Bound::Unbounded)
                        .policy(AlwaysPolicy)
                        .record_history(false)
                        .build(),
                )
            }),
        ),
        (
            "probabilistic",
            Box::new(|seed| {
                Arc::new(
                    FaultyCasArray::builder(4)
                        .faulty_first(3)
                        .per_object(Bound::Unbounded)
                        .policy(ProbabilisticPolicy::new(0.7, seed))
                        .record_history(false)
                        .build(),
                )
            }),
        ),
        (
            "every-2nd",
            Box::new(|_| {
                Arc::new(
                    FaultyCasArray::builder(4)
                        .faulty_first(3)
                        .per_object(Bound::Unbounded)
                        .policy(EveryNthPolicy::new(2))
                        .record_history(false)
                        .build(),
                )
            }),
        ),
    ];
    for (name, make) in policies {
        for seed in 0..40 {
            let protocol: Arc<dyn Consensus> = Arc::new(CascadeConsensus::new(make(seed), 3));
            let report = run_native(protocol, &inputs(6), Duration::from_secs(10));
            assert!(
                report.ok(),
                "{name} seed {seed}: {:?}",
                report.verdict.violations
            );
        }
    }
}

#[test]
fn fig3_stress_with_tolerance_audit() {
    for seed in 0..60 {
        let (f, t) = (2u64, 2u64);
        let ensemble = Arc::new(
            FaultyCasArray::builder(f as usize)
                .faulty_first(f as usize)
                .per_object(Bound::Finite(t))
                .policy(ProbabilisticPolicy::new(0.5, seed))
                .build(),
        );
        let protocol: Arc<dyn Consensus> =
            Arc::new(StagedConsensus::new(Arc::clone(&ensemble), f, t));
        let report = run_native(protocol, &inputs(f as usize + 1), Duration::from_secs(10));
        assert!(report.ok(), "seed {seed}: {:?}", report.verdict.violations);

        // Audit the recorded history against the declared tolerance.
        let history = ensemble.history();
        assert!(
            history.within(&Tolerance::new(f, t, f + 1)),
            "seed {seed}: execution left tolerance: {} faulty objects, max {} faults",
            history.faulty_object_count(),
            history.max_faults_per_object()
        );
    }
}

#[test]
fn silent_retry_stress() {
    for seed in 0..60 {
        let t = 4u64;
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .kind(FaultKind::Silent)
                .faulty_first(1)
                .per_object(Bound::Finite(t))
                .policy(ProbabilisticPolicy::new(0.6, seed))
                .record_history(false)
                .build(),
        );
        let protocol: Arc<dyn Consensus> = Arc::new(SilentRetryConsensus::new(ensemble, t));
        let report = run_native(protocol, &inputs(4), Duration::from_secs(10));
        assert!(report.ok(), "seed {seed}: {:?}", report.verdict.violations);
    }
}

/// Hammer a multi-shard store from several closed-loop clients and
/// return them for verification.
fn store_workload(store: &Arc<Store>, workers: u32, ops: u32) -> Vec<StoreClient> {
    std::thread::scope(|s| {
        (0..workers)
            .map(|w| {
                let store = Arc::clone(store);
                s.spawn(move || {
                    let mut c = store.client();
                    for i in 0..ops {
                        let key = (w * 7919 + i * 31) % 101;
                        let result = match i % 4 {
                            0 | 1 => c.put(key, w * 10_000 + i),
                            2 => c.get(key),
                            _ => c.del(key),
                        };
                        match result {
                            Ok(_) => {}
                            // The API refusing to answer from a corrupted
                            // shard is correct behavior (naive arm); stop
                            // this worker, verification has the verdict.
                            Err(StoreError::Divergence { .. }) => break,
                            Err(e) => panic!("worker {w}: unexpected error {e}"),
                        }
                    }
                    c
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    })
}

#[test]
fn store_stress_every_tolerated_fault_kind() {
    // Each kind runs within the construction that tolerates it:
    // overriding/arbitrary through the guarded cascade (f + 1 objects),
    // silent through bounded retries (finite t required, E8).
    let cases: [(FaultKind, usize, Bound, f64); 3] = [
        (FaultKind::Overriding, 2, Bound::Unbounded, 0.6),
        (FaultKind::Silent, 1, Bound::Finite(6), 0.6),
        (FaultKind::Arbitrary, 2, Bound::Unbounded, 0.4),
    ];
    for (kind, f, t, rate) in cases {
        for seed in 0..3u64 {
            let store = Arc::new(Store::new(
                StoreConfig::builder()
                    .shards(3)
                    .backend(Backend::robust())
                    .fault(FaultConfig {
                        kind,
                        f,
                        t,
                        rate,
                        ..FaultConfig::default()
                    })
                    .rotate_kinds(false)
                    .checkpoint_interval(16)
                    .seed(0xBEEF + seed)
                    .build()
                    .expect("a tolerated kind within budget is a valid config"),
            ));
            let mut clients = store_workload(&store, 4, 150);
            let report = store.verify(&mut clients);
            assert!(
                report.all_consistent(),
                "{kind:?} seed {seed}: diverged shards {:?}",
                report.diverged_shards()
            );
            // Checkpoints kept every shard's retained log bounded.
            for shard in &report.per_shard {
                assert!(
                    shard.retained_len < 16,
                    "{kind:?} seed {seed} shard {}: retained {} ≥ interval 16",
                    shard.shard,
                    shard.retained_len
                );
                assert!(shard.truncated_prefix > 0);
            }
            // Audit the fault stats against the declared (f, t) budget:
            // faults flowed, every attempt is accounted, and only the
            // declared faulty objects ever faulted.
            let faulty_per_ensemble = if kind == FaultKind::Silent {
                1
            } else {
                f as u64
            };
            for sf in store.shard_faults() {
                assert!(
                    sf.cas_ops > 0,
                    "{kind:?} shard {}: no CAS traffic",
                    sf.shard
                );
                assert!(
                    sf.attempted > 0,
                    "{kind:?} shard {}: rate {rate} attempted nothing",
                    sf.shard
                );
                assert!(
                    sf.observable <= sf.attempted,
                    "{kind:?} shard {}: more observable than attempted",
                    sf.shard
                );
                assert!(
                    sf.faulty_objects <= faulty_per_ensemble,
                    "{kind:?} shard {}: {} objects faulted, budget allows {}",
                    sf.shard,
                    sf.faulty_objects,
                    faulty_per_ensemble
                );
            }
        }
    }
}

#[test]
fn store_stress_naive_backend_eventually_diverges() {
    let mut diverged = false;
    for seed in 0..25u64 {
        let store = Arc::new(Store::new(
            StoreConfig::builder()
                .shards(2)
                .backend(Backend::naive())
                .fault(FaultConfig {
                    rate: 1.0,
                    ..FaultConfig::default()
                })
                .rotate_kinds(false)
                .checkpoint_interval(8)
                .seed(seed)
                .build()
                .expect("naive configs skip tolerability validation"),
        ));
        let mut clients = store_workload(&store, 3, 60);
        if !store.verify(&mut clients).all_consistent() {
            diverged = true;
            break;
        }
    }
    assert!(
        diverged,
        "naive backend survived 25 seeds at 100% fault rate"
    );
}

#[test]
fn stats_and_history_agree_under_contention() {
    let ensemble = Arc::new(
        FaultyCasArray::builder(3)
            .faulty_first(2)
            .per_object(Bound::Finite(5))
            .policy(AlwaysPolicy)
            .build(),
    );
    std::thread::scope(|s| {
        for i in 0..6u64 {
            let e = Arc::clone(&ensemble);
            s.spawn(move || {
                for j in 0..50u64 {
                    let _ = e.cas(
                        functional_faults::spec::ObjectId((j % 3) as usize),
                        functional_faults::spec::BOTTOM,
                        1_000_000 + i * 100 + j,
                    );
                }
            });
        }
    });
    let history = ensemble.history();
    let stats = ensemble.stats();
    // Both accountings see the same per-object fault counts.
    let history_counts = history.fault_counts_per_object();
    for (obj, stat) in stats.all().iter().enumerate() {
        let from_history = history_counts
            .get(&functional_faults::spec::ObjectId(obj))
            .copied()
            .unwrap_or(0);
        assert_eq!(
            stat.observable_faults, from_history,
            "object {obj}: stats vs history mismatch"
        );
        assert!(stat.observable_faults <= 5, "budget exceeded on {obj}");
    }
    assert_eq!(
        history.len() as u64,
        stats.all().iter().map(|s| s.ops).sum::<u64>()
    );
}
