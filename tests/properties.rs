//! Property-based tests (proptest) on the core invariants: encodings,
//! fault classification, tolerance algebra, replay determinism, and —
//! most importantly — consensus under *arbitrary* schedules and fault
//! scripts within the declared `(f, t, n)` budgets.

use functional_faults::consensus::{cascades, one_shots, staged_machines, StageValue};
use functional_faults::sim::{
    run, FaultDecision, FaultPlan, Heap, RunConfig, Scripted, ScriptedFault, StepDecision,
};
use functional_faults::spec::{
    check_consensus, classify_cas, standard_post, Bound, CasClassification, CasRecord, Input,
    ProcessId, Tolerance, BOTTOM,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Encodings.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn input_word_round_trip(v in any::<u32>()) {
        let i = Input(v);
        prop_assert_eq!(Input::from_word(i.to_word()), Some(i));
        prop_assert_ne!(i.to_word(), BOTTOM);
    }

    #[test]
    fn stage_value_round_trip(v in any::<u32>(), s in 0u32..=u32::MAX - 1) {
        let sv = StageValue::new(Input(v), s);
        prop_assert_eq!(StageValue::unpack(sv.pack()), Some(sv));
        prop_assert_ne!(sv.pack(), BOTTOM);
        prop_assert_eq!(StageValue::stage_of(sv.pack()), s as i64);
    }

    #[test]
    fn distinct_stage_values_pack_distinctly(
        a in any::<u32>(), sa in 0u32..1000,
        b in any::<u32>(), sb in 0u32..1000,
    ) {
        let pa = StageValue::new(Input(a), sa).pack();
        let pb = StageValue::new(Input(b), sb).pack();
        prop_assert_eq!(pa == pb, a == b && sa == sb);
    }
}

// ---------------------------------------------------------------------
// Fault classification.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn correct_iff_standard_postcondition(
        pre in any::<u64>(), exp in any::<u64>(), new in any::<u64>(),
        post in any::<u64>(), returned in any::<u64>(),
    ) {
        let r = CasRecord { pre, exp, new, post, returned };
        prop_assert_eq!(
            classify_cas(&r) == CasClassification::Correct,
            standard_post(&r)
        );
    }

    #[test]
    fn override_footprint_classifies_as_overriding(
        pre in any::<u64>(), exp in any::<u64>(), new in any::<u64>(),
    ) {
        // The exact memory footprint an overriding execution leaves.
        let r = CasRecord { pre, exp, new, post: new, returned: pre };
        let c = classify_cas(&r);
        if standard_post(&r) {
            prop_assert_eq!(c, CasClassification::Correct);
        } else {
            prop_assert_eq!(
                c,
                CasClassification::Fault(functional_faults::spec::FaultKind::Overriding)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Tolerance algebra.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn admits_is_downward_closed(
        f in 0u64..10, t in 0u64..10, n in 1u64..10,
        fo in 0u64..10, mf in 0u64..10, pr in 0u64..10,
        df in 0u64..5, dm in 0u64..5, dp in 0u64..5,
    ) {
        let tol = Tolerance::new(f, t, n);
        if tol.admits(fo, mf, pr) {
            prop_assert!(tol.admits(
                fo.saturating_sub(df),
                mf.saturating_sub(dm),
                pr.saturating_sub(dp),
            ));
        }
    }

    #[test]
    fn subsumption_implies_admission(
        f1 in 0u64..5, t1 in 0u64..5, n1 in 1u64..5,
        f2 in 0u64..5, t2 in 0u64..5, n2 in 1u64..5,
        fo in 0u64..5, mf in 0u64..5, pr in 0u64..5,
    ) {
        let weak = Tolerance::new(f1, t1, n1);
        let strong = Tolerance::new(f2, t2, n2);
        if weak.subsumed_by(&strong) && weak.admits(fo, mf, pr) {
            prop_assert!(strong.admits(fo, mf, pr),
                "{weak} admits ({fo},{mf},{pr}) and is subsumed by {strong}, which must too");
        }
    }
}

// ---------------------------------------------------------------------
// Arbitrary-schedule consensus: the crown property. Any interleaving +
// any fault script within budget must satisfy consensus.
// ---------------------------------------------------------------------

/// Drive machines under a schedule derived from `schedule_bytes` and a
/// fault script from `fault_bits`; return the run report.
fn scripted_run(
    machines: Vec<Box<dyn functional_faults::sim::Process>>,
    objects: usize,
    plan: &FaultPlan,
    schedule_bytes: &[u8],
    fault_bits: &[bool],
    n: usize,
) -> functional_faults::sim::RunReport {
    let schedule: Vec<ProcessId> = schedule_bytes
        .iter()
        .map(|&b| ProcessId(b as usize % n))
        .collect();
    let faults = fault_bits.iter().map(|&b| {
        if b {
            StepDecision::Apply(FaultDecision::Override)
        } else {
            StepDecision::Apply(FaultDecision::Correct)
        }
    });
    run(
        machines,
        Heap::new(objects, 0),
        plan,
        &mut Scripted::new(schedule),
        &mut ScriptedFault::new(faults),
        RunConfig {
            step_limit: 1_000_000,
            record_trace: false,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cascade_consensus_under_arbitrary_schedules(
        schedule in proptest::collection::vec(any::<u8>(), 0..200),
        faults in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        // f = 1 (2 objects, O0 unboundedly faulty), n = 3.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let inputs: Vec<Input> = (0..3).map(Input).collect();
        let report = scripted_run(cascades(&inputs, 1), 2, &plan, &schedule, &faults, 3);
        prop_assert!(report.completed);
        let verdict = check_consensus(&report.outcomes, Some(2));
        prop_assert!(verdict.ok(), "{:?}", verdict.violations);
    }

    #[test]
    fn staged_consensus_under_arbitrary_schedules(
        schedule in proptest::collection::vec(any::<u8>(), 0..300),
        faults in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        // f = 1 object (faulty, t = 2), n = 2.
        let plan = FaultPlan::overriding(1, Bound::Finite(2));
        let inputs: Vec<Input> = (0..2).map(Input).collect();
        let report = scripted_run(staged_machines(&inputs, 1, 2), 1, &plan, &schedule, &faults, 2);
        prop_assert!(report.completed);
        let verdict = check_consensus(&report.outcomes, None);
        prop_assert!(verdict.ok(), "{:?}", verdict.violations);
        // The budget was respected.
        prop_assert!(report.history.max_faults_per_object() <= 2);
        prop_assert!(report.history.faulty_object_count() <= 1);
    }

    #[test]
    fn two_process_consensus_under_arbitrary_schedules(
        schedule in proptest::collection::vec(any::<u8>(), 0..50),
        faults in proptest::collection::vec(any::<bool>(), 0..16),
    ) {
        // Theorem 4's environment: 1 object, unbounded faults, n = 2.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let inputs: Vec<Input> = (0..2).map(Input).collect();
        let report = scripted_run(one_shots(&inputs), 1, &plan, &schedule, &faults, 2);
        prop_assert!(report.completed);
        prop_assert!(check_consensus(&report.outcomes, Some(1)).ok());
    }

    #[test]
    fn replay_is_deterministic(
        schedule in proptest::collection::vec(any::<u8>(), 0..150),
        faults in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let inputs: Vec<Input> = (0..3).map(Input).collect();
        let a = scripted_run(cascades(&inputs, 1), 2, &plan, &schedule, &faults, 3);
        let b = scripted_run(cascades(&inputs, 1), 2, &plan, &schedule, &faults, 3);
        prop_assert_eq!(a.outcomes, b.outcomes);
        prop_assert_eq!(a.total_steps, b.total_steps);
        prop_assert_eq!(a.history.events(), b.history.events());
    }
}
