//! Cross-validation between the two executable forms of each protocol:
//! the blocking (native-thread) implementations and the step machines
//! must decide identically on matched executions.

use functional_faults::cas::AtomicCasArray;
use functional_faults::consensus::{
    cascades, one_shots, silent_retries, staged_machines, CascadeConsensus, Consensus,
    HerlihyConsensus, SilentRetryConsensus, StagedConsensus,
};
use functional_faults::sim::{
    run, FaultPlan, Heap, NeverFault, Process, RoundRobin, RunConfig, Scripted,
};
use functional_faults::spec::{check_consensus, Input, ProcessId};
use std::sync::Arc;

fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(|i| Input(10 * (i + 1))).collect()
}

/// Run machines under a scripted (or round-robin) fault-free schedule
/// and return the decisions in pid order.
fn sim_decisions(
    machines: Vec<Box<dyn Process>>,
    objects: usize,
    schedule: Option<Vec<ProcessId>>,
) -> Vec<Input> {
    let report = match schedule {
        Some(script) => run(
            machines,
            Heap::new(objects, 0),
            &FaultPlan::none(),
            &mut Scripted::new(script),
            &mut NeverFault,
            RunConfig::default(),
        ),
        None => run(
            machines,
            Heap::new(objects, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        ),
    };
    assert!(report.completed);
    assert!(check_consensus(&report.outcomes, None).ok());
    report
        .outcomes
        .iter()
        .map(|o| o.decision.unwrap())
        .collect()
}

/// Sequential blocking decisions (one caller after another) in order.
fn blocking_sequential(protocol: &dyn Consensus, inputs: &[Input]) -> Vec<Input> {
    inputs.iter().map(|&v| protocol.decide(v)).collect()
}

/// A sequential schedule: p0's steps, then p1's, etc. — the scripted
/// analogue of sequential blocking calls.
fn sequential_schedule(n: usize, steps_each: usize) -> Vec<ProcessId> {
    (0..n)
        .flat_map(|p| std::iter::repeat_n(ProcessId(p), steps_each))
        .collect()
}

#[test]
fn herlihy_forms_agree_sequentially() {
    let ins = inputs(3);
    let sim = sim_decisions(one_shots(&ins), 1, Some(sequential_schedule(3, 1)));
    let blocking = HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1)));
    let native = blocking_sequential(&blocking, &ins);
    assert_eq!(sim, native);
}

#[test]
fn cascade_forms_agree_sequentially() {
    for f in 1..=3usize {
        let ins = inputs(4);
        let sim = sim_decisions(
            cascades(&ins, f),
            f + 1,
            Some(sequential_schedule(4, f + 1)),
        );
        let blocking = CascadeConsensus::new(Arc::new(AtomicCasArray::new(f + 1)), f);
        let native = blocking_sequential(&blocking, &ins);
        assert_eq!(sim, native, "f = {f}");
    }
}

#[test]
fn staged_forms_agree_sequentially() {
    for (f, t) in [(1u64, 1u64), (2, 1), (2, 2)] {
        let n = f as usize + 1;
        let ins = inputs(n);
        // Sequential schedule with generous per-process step counts (the
        // scripted scheduler falls back to round-robin after the script,
        // but sequential solo runs decide within the budget).
        let sim = sim_decisions(
            staged_machines(&ins, f, t),
            f as usize,
            Some(sequential_schedule(n, 100_000)),
        );
        let blocking = StagedConsensus::new(Arc::new(AtomicCasArray::new(f as usize)), f, t);
        let native = blocking_sequential(&blocking, &ins);
        assert_eq!(sim, native, "f = {f}, t = {t}");
    }
}

#[test]
fn silent_retry_forms_agree_sequentially() {
    let ins = inputs(3);
    let sim = sim_decisions(silent_retries(&ins), 1, Some(sequential_schedule(3, 10)));
    let blocking = SilentRetryConsensus::new(Arc::new(AtomicCasArray::new(1)), 4);
    let native = blocking_sequential(&blocking, &ins);
    assert_eq!(sim, native);
}

#[test]
fn round_robin_interleavings_still_satisfy_consensus() {
    // Fault-free round-robin for every protocol: distinct schedules from
    // the sequential ones above, same correctness.
    sim_decisions(one_shots(&inputs(4)), 1, None);
    sim_decisions(cascades(&inputs(4), 2), 3, None);
    sim_decisions(staged_machines(&inputs(3), 2, 2), 2, None);
    sim_decisions(silent_retries(&inputs(4)), 1, None);
}

#[test]
fn step_counts_match_paper_wait_freedom_bounds() {
    // Figure 1 / Herlihy: exactly 1 shared step per process. Figure 2:
    // exactly f + 1 steps per process.
    let report = run(
        one_shots(&inputs(3)),
        Heap::new(1, 0),
        &FaultPlan::none(),
        &mut RoundRobin::new(),
        &mut NeverFault,
        RunConfig::default(),
    );
    assert!(report.outcomes.iter().all(|o| o.steps == 1));

    for f in 1..=4usize {
        let report = run(
            cascades(&inputs(3), f),
            Heap::new(f + 1, 0),
            &FaultPlan::none(),
            &mut RoundRobin::new(),
            &mut NeverFault,
            RunConfig::default(),
        );
        assert!(
            report.outcomes.iter().all(|o| o.steps == (f + 1) as u64),
            "f = {f}"
        );
    }
}
