//! End-to-end theorem checks: each of the paper's results, upper and
//! lower bound side by side, across the simulator and the native path.

use functional_faults::adversary::{covering_attack, find_violation_unbounded, wipe_attack};
use functional_faults::cas::{AlwaysPolicy, FaultyCasArray, ProbabilisticPolicy};
use functional_faults::consensus::{
    cascades, one_shots, run_native, staged_machines, CascadeConsensus, Consensus, StagedConsensus,
    TwoProcessConsensus,
};
use functional_faults::sim::{explore, ExplorerConfig, FaultPlan, Heap, SimState};
use functional_faults::spec::{Bound, Input};
use std::sync::Arc;
use std::time::Duration;

fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(|i| Input(100 + i)).collect()
}

// ---------------------------------------------------------------------
// Theorem 4: (f, ∞, 2)-tolerant consensus from ONE object.
// ---------------------------------------------------------------------

#[test]
fn theorem4_upper_exhaustive_and_native() {
    // Exhaustive: every schedule × fault pattern for n = 2.
    let plan = FaultPlan::overriding(1, Bound::Unbounded);
    let state = SimState::new(one_shots(&inputs(2)), Heap::new(1, 0), plan);
    assert!(explore(state, ExplorerConfig::default()).verified());

    // Native: 100 trials at full fault rate.
    for seed in 0..100 {
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .faulty_first(1)
                .per_object(Bound::Unbounded)
                .policy(ProbabilisticPolicy::new(1.0, seed))
                .record_history(false)
                .build(),
        );
        let protocol: Arc<dyn Consensus> = Arc::new(TwoProcessConsensus::new(ensemble));
        let report = run_native(protocol, &inputs(2), Duration::from_secs(5));
        assert!(report.ok(), "seed {seed}: {:?}", report.verdict.violations);
    }
}

#[test]
fn theorem4_tight_no_zero_object_solution() {
    // Trivially, consensus needs at least one shared object: two
    // processes that never communicate each decide their own input.
    // (The paper notes the 2-process bound is tight at one object.)
    let state = SimState::new(ff_sim_solo_pair(), Heap::new(0, 0), FaultPlan::none());
    let report = explore(state, ExplorerConfig::default());
    assert!(report.violation.is_some());
}

/// Two processes that take one local step and decide their own inputs —
/// the best any 0-object protocol can do.
fn ff_sim_solo_pair() -> Vec<Box<dyn functional_faults::sim::Process>> {
    use functional_faults::sim::SoloDecider;
    vec![
        Box::new(SoloDecider::new(Input(1), 1)),
        Box::new(SoloDecider::new(Input(2), 1)),
    ]
}

// ---------------------------------------------------------------------
// Theorem 5 ↔ Theorem 18: f + 1 objects suffice; f do not (n > 2).
// ---------------------------------------------------------------------

#[test]
fn theorem5_and_18_boundary() {
    // Upper: f = 1, 2 objects, n = 3, unbounded faults — exhaustive.
    let plan = FaultPlan::overriding(1, Bound::Unbounded);
    let state = SimState::new(cascades(&inputs(3), 1), Heap::new(2, 0), plan);
    assert!(explore(state, ExplorerConfig::default()).verified());

    // Lower: the same sweep protocol with only 1 object (all faulty).
    let report = find_violation_unbounded(one_shots(&inputs(3)), 1, ExplorerConfig::default());
    assert!(report.violation.is_some());

    // Lower at f = 2: sweep of 2 faulty objects still breaks.
    let report = find_violation_unbounded(cascades(&inputs(3), 1), 2, ExplorerConfig::default());
    assert!(report.violation.is_some());
}

#[test]
fn theorem5_native_heavy() {
    // f = 4 faulty objects of 5, 6 threads, greedy faults, 30 trials.
    for trial in 0..30 {
        let ensemble = Arc::new(
            FaultyCasArray::builder(5)
                .faulty_first(4)
                .per_object(Bound::Unbounded)
                .policy(AlwaysPolicy)
                .record_history(false)
                .build(),
        );
        let protocol: Arc<dyn Consensus> = Arc::new(CascadeConsensus::new(ensemble, 4));
        let report = run_native(protocol, &inputs(6), Duration::from_secs(10));
        assert!(
            report.ok(),
            "trial {trial}: {:?}",
            report.verdict.violations
        );
    }
}

// ---------------------------------------------------------------------
// Theorem 6 ↔ Theorem 19: f objects serve f + 1 processes; not f + 2.
// ---------------------------------------------------------------------

#[test]
fn theorem6_exhaustive_smallest() {
    for t in 1..=2u64 {
        let plan = FaultPlan::overriding(1, Bound::Finite(t));
        let state = SimState::new(staged_machines(&inputs(2), 1, t), Heap::new(1, 0), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "t = {t}: {report:?}");
    }
}

#[test]
fn theorem6_native_all_faulty() {
    for (f, t) in [(1u64, 1u64), (2, 1), (2, 2), (3, 1)] {
        for seed in 0..20 {
            let ensemble = Arc::new(
                FaultyCasArray::builder(f as usize)
                    .faulty_first(f as usize)
                    .per_object(Bound::Finite(t))
                    .policy(ProbabilisticPolicy::new(0.4, seed))
                    .record_history(false)
                    .build(),
            );
            let protocol: Arc<dyn Consensus> = Arc::new(StagedConsensus::new(ensemble, f, t));
            let report = run_native(protocol, &inputs(f as usize + 1), Duration::from_secs(10));
            assert!(
                report.ok(),
                "f={f} t={t} seed={seed}: {:?}",
                report.verdict.violations
            );
        }
    }
}

#[test]
fn theorem19_covering_breaks_every_f() {
    for f in 1..=4u64 {
        let report = covering_attack(staged_machines(&inputs(f as usize + 2), f, 1), f as usize);
        assert!(report.violated(), "f = {f}: {report:?}");
        // The attack stayed within t = 1 per object.
        assert_eq!(report.covered.len(), f as usize);
    }
}

// ---------------------------------------------------------------------
// Section 4 headline: functional ≠ data faults.
// ---------------------------------------------------------------------

#[test]
fn model_separation_same_budget() {
    // Functional, (f = 1, t = 1): exhaustively safe.
    let plan = FaultPlan::overriding(1, Bound::Finite(1));
    let state = SimState::new(staged_machines(&inputs(2), 1, 1), Heap::new(1, 0), plan);
    assert!(explore(state, ExplorerConfig::default()).verified());

    // Data, same budget: the wipe attack wins.
    let report = wipe_attack(staged_machines(&inputs(2), 1, 1), 1);
    assert!(report.violated());
    assert_eq!(report.corruptions_per_object, 1);
}

// ---------------------------------------------------------------------
// Section 5.2: the hierarchy.
// ---------------------------------------------------------------------

#[test]
fn hierarchy_boundary_f1_and_f2() {
    use functional_faults::adversary::{probe_staged, SafetyVerdict};
    let config = ExplorerConfig {
        max_states: 400_000,
        max_depth: 50_000,
        stop_at_first_violation: true,
        threads: 1,
    };
    assert!(probe_staged(1, 1, 2, config).safe());
    assert_eq!(probe_staged(1, 1, 3, config), SafetyVerdict::Violated);
    assert!(probe_staged(2, 1, 3, config).safe());
    assert_eq!(probe_staged(2, 1, 4, config), SafetyVerdict::Violated);
}

// ---------------------------------------------------------------------
// Slow exhaustive checks (run with `cargo test -- --ignored`).
// ---------------------------------------------------------------------

/// Theorem 6 at (f = 2, t = 1, n = 3) with the full proven stage bound
/// maxStage = 12: a complete proof by enumeration — 8,001,106 states,
/// ~80 s sequential in release mode on one core (much longer in debug).
/// Runs through the parallel explorer on all available cores
/// (`FF_EXPLORER_THREADS` overrides); still opt-in because even
/// parallelized it is far beyond unit-test budgets. CI runs it in the
/// scheduled/label-gated `exhaustive` job.
#[test]
#[ignore = "exhaustive 8M-state verification; ~80 s sequential in release, less with cores"]
fn theorem6_f2_full_bound_exhaustive() {
    let plan = FaultPlan::overriding(2, Bound::Finite(1));
    let state = SimState::new(staged_machines(&inputs(3), 2, 1), Heap::new(2, 0), plan);
    let report = functional_faults::sim::explore_parallel(
        state,
        ExplorerConfig {
            max_states: 30_000_000,
            max_depth: 200_000,
            stop_at_first_violation: true,
            threads: functional_faults::sim::default_threads(),
        },
    );
    assert!(report.verified(), "{report:?}");
}
