//! Differential tests: the three exploration strategies — depth-first
//! (`explore`), breadth-first (`explore_bfs`), and work-stealing parallel
//! (`explore_parallel`) — must agree on every schedule-independent report
//! field over a grid of protocol × fault-plan configurations.
//!
//! Fields compared: `states_expanded`, `terminals`, `agreed_values`,
//! `violation_counts` (all four counters), `truncated`, and `verified()`.
//! `max_depth_seen` is traversal-dependent by design (each memoized
//! state contributes the depth of the tree path it was first expanded
//! from), so it is only sanity-checked: BFS, which expands states at
//! shortest-path depth, must report a value no larger than DFS.
//!
//! BFS cannot detect cycles (it memoizes visited states and terminates,
//! but reports no back edges), so the cyclic configuration compares DFS
//! against parallel only.

use functional_faults::consensus::{cascades, one_shots, staged_machines};
use functional_faults::sim::{
    explore, explore_bfs, explore_parallel, ExploreReport, ExplorerConfig, FaultPlan, Heap, Op,
    OpResult, Process, RegId, SimState, Status,
};
use functional_faults::spec::{check_consensus, Bound, Input};

fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(|i| Input(100 + i)).collect()
}

fn full_scan(threads: usize) -> ExplorerConfig {
    ExplorerConfig {
        max_states: 2_000_000,
        max_depth: 100_000,
        stop_at_first_violation: false,
        threads,
    }
}

/// A named initial-state builder: each exploration strategy gets a fresh
/// copy of the same configuration.
type Case = (&'static str, Box<dyn Fn() -> SimState>);

/// The configuration grid. Every entry is acyclic (protocols are
/// bounded-stage and faults only shrink budgets), so all three
/// strategies must fully enumerate the same graph.
fn grid() -> Vec<Case> {
    vec![
        (
            "one_shots_n2_no_faults",
            Box::new(|| SimState::new(one_shots(&inputs(2)), Heap::new(1, 0), FaultPlan::none())),
        ),
        (
            "one_shots_n2_overriding_unbounded",
            Box::new(|| {
                SimState::new(
                    one_shots(&inputs(2)),
                    Heap::new(1, 0),
                    FaultPlan::overriding(1, Bound::Unbounded),
                )
            }),
        ),
        (
            // n = 3 over one object breaks (Theorem 18) — a violating
            // entry, so the per-kind violation counters are exercised.
            "one_shots_n3_overriding_unbounded",
            Box::new(|| {
                SimState::new(
                    one_shots(&inputs(3)),
                    Heap::new(1, 0),
                    FaultPlan::overriding(1, Bound::Unbounded),
                )
            }),
        ),
        (
            "one_shots_n2_silent_bounded",
            Box::new(|| {
                SimState::new(
                    one_shots(&inputs(2)),
                    Heap::new(1, 0),
                    FaultPlan::silent(1, Bound::Finite(1)),
                )
            }),
        ),
        (
            "cascades_n3_f1_overriding_unbounded",
            Box::new(|| {
                SimState::new(
                    cascades(&inputs(3), 1),
                    Heap::new(2, 0),
                    FaultPlan::overriding(1, Bound::Unbounded),
                )
            }),
        ),
        (
            "staged_f1_t1_n2",
            Box::new(|| {
                SimState::new(
                    staged_machines(&inputs(2), 1, 1),
                    Heap::new(1, 0),
                    FaultPlan::overriding(1, Bound::Finite(1)),
                )
            }),
        ),
        (
            "staged_f1_t2_n2",
            Box::new(|| {
                SimState::new(
                    staged_machines(&inputs(2), 1, 2),
                    Heap::new(1, 0),
                    FaultPlan::overriding(1, Bound::Finite(2)),
                )
            }),
        ),
        (
            // f processes + 2 over f objects breaks (Theorem 19) — a
            // second violating entry with a different protocol shape.
            "staged_f1_t1_n3",
            Box::new(|| {
                SimState::new(
                    staged_machines(&inputs(3), 1, 1),
                    Heap::new(1, 0),
                    FaultPlan::overriding(1, Bound::Finite(1)),
                )
            }),
        ),
    ]
}

/// Assert agreement on every schedule-independent field.
fn assert_reports_agree(name: &str, tag: &str, a: &ExploreReport, b: &ExploreReport) {
    assert_eq!(
        a.states_expanded, b.states_expanded,
        "{name}/{tag}: states_expanded"
    );
    assert_eq!(a.terminals, b.terminals, "{name}/{tag}: terminals");
    assert_eq!(
        a.agreed_values, b.agreed_values,
        "{name}/{tag}: agreed_values"
    );
    assert_eq!(
        a.violation_counts, b.violation_counts,
        "{name}/{tag}: violation_counts"
    );
    assert_eq!(a.truncated, b.truncated, "{name}/{tag}: truncated");
    assert_eq!(a.verified(), b.verified(), "{name}/{tag}: verified()");
}

#[test]
fn dfs_bfs_parallel_agree_on_full_scans() {
    for (name, build) in grid() {
        let dfs = explore(build(), full_scan(1));
        assert!(!dfs.truncated, "{name}: grid entry must fit the budget");
        assert!(!dfs.cycle_found, "{name}: grid entries must be acyclic");

        let bfs = explore_bfs(build(), full_scan(1));
        assert_reports_agree(name, "bfs", &dfs, &bfs);
        // BFS expands each memoized state at its shortest-path depth;
        // DFS at its (possibly longer) discovery-path depth. So BFS's
        // deepest path is a lower bound on DFS's, not necessarily equal.
        assert!(
            dfs.max_depth_seen >= bfs.max_depth_seen,
            "{name}: BFS depth {} must not exceed DFS depth {}",
            bfs.max_depth_seen,
            dfs.max_depth_seen
        );

        for threads in [2usize, 4] {
            let par = explore_parallel(build(), full_scan(threads));
            assert_reports_agree(name, &format!("parallel_t{threads}"), &dfs, &par);
            assert_eq!(
                dfs.cycle_found, par.cycle_found,
                "{name}/parallel_t{threads}: cycle_found"
            );
        }
    }
}

#[test]
fn full_scan_witnesses_match_sequential_exactly() {
    // In full-scan mode the parallel explorer re-derives its witness
    // through a sequential search, so even the witness (not just the
    // aggregate counters) is identical to `explore`'s.
    let build = || {
        SimState::new(
            one_shots(&inputs(3)),
            Heap::new(1, 0),
            FaultPlan::overriding(1, Bound::Unbounded),
        )
    };
    let dfs = explore(build(), full_scan(1));
    let seq_witness = dfs.violation.expect("Theorem 18 config must violate");
    for threads in [2usize, 3] {
        let par = explore_parallel(build(), full_scan(threads));
        let w = par.violation.expect("parallel must also find a violation");
        assert_eq!(
            w.choices, seq_witness.choices,
            "t{threads}: witness choices"
        );
        assert_eq!(
            w.outcomes, seq_witness.outcomes,
            "t{threads}: witness outcomes"
        );
        assert_eq!(
            w.violations, seq_witness.violations,
            "t{threads}: witness violations"
        );
    }
}

#[test]
fn parallel_deterministic_across_runs_and_thread_counts() {
    let build = || {
        SimState::new(
            staged_machines(&inputs(3), 1, 1),
            Heap::new(1, 0),
            FaultPlan::overriding(1, Bound::Finite(1)),
        )
    };
    let reference = explore_parallel(build(), full_scan(2));
    for threads in [2usize, 3, 4] {
        for run in 0..2 {
            let r = explore_parallel(build(), full_scan(threads));
            assert_reports_agree(
                "staged_f1_t1_n3",
                &format!("t{threads}_run{run}"),
                &reference,
                &r,
            );
            let w_ref = reference.violation.as_ref().expect("violating config");
            let w = r.violation.as_ref().expect("violating config");
            assert_eq!(w.choices, w_ref.choices, "t{threads} run {run}: witness");
        }
    }
}

#[test]
fn stop_mode_all_strategies_find_replayable_witnesses() {
    // Under stop_at_first_violation the strategies may stop at different
    // witnesses (and different exploration counts), but each must return
    // a witness that REPLAYS to a real consensus violation.
    let stop = |threads| ExplorerConfig {
        stop_at_first_violation: true,
        ..full_scan(threads)
    };
    let plan = FaultPlan::overriding(1, Bound::Unbounded);
    let build = || SimState::new(one_shots(&inputs(3)), Heap::new(1, 0), plan.clone());

    let reports = [
        ("dfs", explore(build(), stop(1))),
        ("bfs", explore_bfs(build(), stop(1))),
        ("parallel_t2", explore_parallel(build(), stop(2))),
        ("parallel_t4", explore_parallel(build(), stop(4))),
    ];
    for (tag, report) in &reports {
        assert!(!report.verified(), "{tag}: config must violate");
        let w = report
            .violation
            .as_ref()
            .unwrap_or_else(|| panic!("{tag}: stop mode must surface a witness"));
        let replay = w.replay(one_shots(&inputs(3)), Heap::new(1, 0), &plan);
        assert!(
            !check_consensus(&replay.outcomes, None).ok(),
            "{tag}: witness must replay to a real violation"
        );
    }
}

/// Two never-terminating writers whose joint state flips between a
/// handful of configurations: a pure cycle with no terminals.
#[derive(Clone)]
struct Flipper {
    phase: u8,
}

impl Process for Flipper {
    fn next_op(&self) -> Op {
        Op::Write(RegId(0), (self.phase as u64) % 2)
    }
    fn apply(&mut self, _r: OpResult) -> Status {
        self.phase = (self.phase + 1) % 2;
        Status::Running
    }
    fn status(&self) -> Status {
        Status::Running
    }
    fn input(&self) -> Input {
        Input(0)
    }
    fn snapshot(&self) -> Vec<u64> {
        vec![self.phase as u64]
    }
    fn box_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

#[test]
fn cyclic_config_dfs_and_parallel_agree() {
    let build = || {
        SimState::new(
            vec![
                Box::new(Flipper { phase: 0 }) as Box<dyn Process>,
                Box::new(Flipper { phase: 1 }),
            ],
            Heap::new(0, 1),
            FaultPlan::none(),
        )
    };
    let dfs = explore(build(), full_scan(1));
    assert!(dfs.cycle_found, "sequential DFS must find the cycle");
    assert!(!dfs.verified());
    for threads in [2usize, 4] {
        let par = explore_parallel(build(), full_scan(threads));
        assert!(par.cycle_found, "t{threads}: parallel must find the cycle");
        assert!(!par.verified());
        assert_eq!(
            dfs.states_expanded, par.states_expanded,
            "t{threads}: cycle detection must not change state accounting"
        );
        assert_eq!(dfs.terminals, par.terminals, "t{threads}: terminals");
    }
}
