//! Golden-trace regression tests: pin the exact operation sequences of
//! the protocol machines on fixed schedules, so a refactor that changes
//! protocol *semantics* (not just code shape) fails loudly. The expected
//! sequences are derived line-by-line from the paper's Figures 1–3.

use functional_faults::consensus::{StageValue, StagedMachine};
use functional_faults::sim::{Op, OpResult, Process, Status};
use functional_faults::spec::{Input, Word, BOTTOM};

fn pair(v: u32, s: u32) -> Word {
    StageValue::new(Input(v), s).pack()
}

/// Drive one machine against an in-test heap model of correct CAS cells,
/// recording each (object, exp, new) it issues.
fn solo_ops(mut m: StagedMachine, cells: usize, limit: usize) -> Vec<(usize, Word, Word)> {
    let mut heap = vec![BOTTOM; cells];
    let mut ops = Vec::new();
    let mut steps = 0;
    while m.status() == Status::Running && steps < limit {
        steps += 1;
        let Op::Cas { obj, exp, new } = m.next_op() else {
            panic!("staged machine only issues CAS ops");
        };
        ops.push((obj.0, exp, new));
        let old = heap[obj.0];
        if old == exp {
            heap[obj.0] = new;
        }
        m.apply(OpResult::Cas { old });
    }
    assert!(
        m.status() != Status::Running,
        "machine did not decide in {limit} steps"
    );
    ops
}

#[test]
fn staged_solo_trace_f1_t1_matches_figure3() {
    // f = 1, t = 1 ⇒ maxStage = 5. Solo run, all CASes correct.
    //
    // Stage 0: exp = ⊥, CAS(O0, ⊥, ⟨7,0⟩) succeeds (line 16); line 17
    //   leaves exp = ⊥ (⊥ has no stage to retarget); s ← 1.
    // Stage 1: CAS(O0, ⊥, ⟨7,1⟩) fails (old = ⟨7,0⟩, stage 0 < 1): line 15
    //   sets exp ← ⟨7,0⟩; retry succeeds; line 17 retargets exp ← ⟨7,1⟩.
    // Stages 2–4: exp = ⟨7,s-1⟩... but line 17 left exp at the *previous*
    //   stage value, so each stage needs the line-15 correction exactly
    //   once: fail-then-succeed, two CASes per stage.
    // Final stage (lines 19–23): CAS(O0, exp, ⟨7,5⟩) with exp = ⟨7,4⟩
    //   (retargeted to s = 4 at the end of stage 4)... the last line 17
    //   retargeted exp to stage 4, and the cell holds ⟨7,4⟩: immediate
    //   success.
    let ops = solo_ops(StagedMachine::new(Input(7), 1, 1), 1, 100);
    let expected: Vec<(usize, Word, Word)> = vec![
        (0, BOTTOM, pair(7, 0)),     // stage 0: success
        (0, BOTTOM, pair(7, 1)),     // stage 1: fail (line 15)
        (0, pair(7, 0), pair(7, 1)), // stage 1: success
        (0, pair(7, 1), pair(7, 2)), // stage 2: success (exp retargeted to 1)
        (0, pair(7, 2), pair(7, 3)), // stage 3: success
        (0, pair(7, 3), pair(7, 4)), // stage 4: success
        (0, pair(7, 4), pair(7, 5)), // final stage: success
    ];
    assert_eq!(ops, expected);
}

#[test]
fn staged_solo_trace_f2_t1_sweeps_objects_in_order() {
    // f = 2, t = 1 ⇒ maxStage = 12. Check the first two stages' object
    // order and expectations; Claim 9's "O_0 then O_1" discipline must
    // hold within every stage.
    let ops = solo_ops(StagedMachine::new(Input(9), 2, 1), 2, 200);
    // Stage 0: both objects from ⊥.
    assert_eq!(ops[0], (0, BOTTOM, pair(9, 0)));
    assert_eq!(ops[1], (1, BOTTOM, pair(9, 0)));
    // Stage 1 on O0: one failed probe (exp still ⊥), then success.
    assert_eq!(ops[2], (0, BOTTOM, pair(9, 1)));
    assert_eq!(ops[3], (0, pair(9, 0), pair(9, 1)));
    // O1 at stage 1: exp was retargeted to ⟨9,1⟩ but O1 holds ⟨9,0⟩:
    // fail once, then succeed.
    assert_eq!(ops[4], (1, pair(9, 1), pair(9, 1)));
    assert_eq!(ops[5], (1, pair(9, 0), pair(9, 1)));
    // Every stage visits objects in ascending order (Claim 9).
    let mut last_stage_and_obj = (0u32, 0usize);
    for &(obj, _, new) in &ops {
        let sv = StageValue::unpack(new).unwrap();
        let cur = (sv.stage, obj);
        assert!(
            cur >= last_stage_and_obj || sv.stage > last_stage_and_obj.0,
            "object order regressed: {cur:?} after {last_stage_and_obj:?}"
        );
        last_stage_and_obj = cur;
    }
}

#[test]
fn staged_adoption_jumps_stages() {
    // A machine that finds a *later-stage* value adopts value and stage
    // (lines 9–10) and does not rewrite the object (line 14).
    let mut m = StagedMachine::new(Input(1), 1, 1); // maxStage = 5
                                                    // First op: CAS(O0, ⊥, ⟨1,0⟩). Feed it old = ⟨2,3⟩ (another process
                                                    // is already at stage 3).
    let Op::Cas { exp, .. } = m.next_op() else {
        panic!()
    };
    assert_eq!(exp, BOTTOM);
    m.apply(OpResult::Cas { old: pair(2, 3) });
    // The machine adopted: its next write must carry ⟨2, 4⟩ after the
    // object/stage bookkeeping (stage 3 adopted, object advanced, stage
    // incremented as f = 1 wraps immediately).
    let Op::Cas { new, .. } = m.next_op() else {
        panic!()
    };
    let sv = StageValue::unpack(new).unwrap();
    assert_eq!(sv.val, Input(2), "value adopted from the later-stage pair");
    assert_eq!(sv.stage, 4, "stage advanced past the adopted stage");
}

#[test]
fn staged_adopting_max_stage_decides_immediately() {
    // Line 11–12: reading ⟨x, maxStage⟩ decides x on the spot.
    let mut m = StagedMachine::new(Input(1), 1, 1); // maxStage = 5
    let status = m.apply(OpResult::Cas { old: pair(9, 5) });
    assert_eq!(status, Status::Decided(Input(9)));
}
