//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the rand 0.8 API the workspace
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm real rand 0.8 uses for `SmallRng` on 64-bit targets — so
//! seeded streams are deterministic, fast, and of good statistical
//! quality. Exact bit-compatibility with upstream `rand` is *not*
//! guaranteed (range sampling differs); nothing in the workspace relies
//! on specific draws, only on determinism per seed.

#![forbid(unsafe_code)]

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`low..high`, `low..=high`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Widening multiply: maps 64 random bits to [0, span) with
                // negligible bias for the small spans used here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Small fast RNGs (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — rand 0.8's `SmallRng` algorithm on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [a, b, c, d] = self.s;
            let result = a.wrapping_add(a.wrapping_add(d).rotate_left(23));
            let t = b << 17;
            let mut s = [a, b, c, d];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
