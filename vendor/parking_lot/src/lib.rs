//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the parking_lot 0.12 API the workspace
//! uses: a [`Mutex`] and an [`RwLock`] whose `lock()`/`read()`/`write()`
//! return the guard directly (no poisoning `Result`). They are thin
//! wrappers over the `std::sync` primitives that treat a poisoned lock
//! as still-usable, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock with parking_lot's panic-safe `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. A lock poisoned by a
    /// panicking holder is recovered (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-safe guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 9;
        assert_eq!(*l.read(), 10);
        assert_eq!(l.into_inner(), 10);
    }
}
