//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the parking_lot 0.12 API the workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly (no
//! poisoning `Result`). It is a thin wrapper over `std::sync::Mutex`
//! that treats a poisoned lock as still-usable, matching parking_lot's
//! no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion lock with parking_lot's panic-safe `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. A lock poisoned by a
    /// panicking holder is recovered (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
