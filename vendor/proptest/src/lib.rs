//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements the slice of the proptest 1.x API the workspace
//! uses: the [`proptest!`] macro with `pat in strategy` arguments and an
//! optional `#![proptest_config(...)]` header, [`any`], integer-range
//! strategies, [`Strategy::prop_map`], [`prop_oneof!`], [`Just`],
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs via
//!   the panic message (every generated binding is formatted into the
//!   failure), but is not minimized.
//! * **Deterministic seeding.** Cases are generated from a fixed seed
//!   derived from the test function's name, so runs are reproducible
//!   without a persistence file.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Number of cases run per property unless overridden with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
pub const DEFAULT_CASES: u32 = 128;

/// Test-runner configuration (subset of proptest's).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// An RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical full-range strategy (subset of `Arbitrary`).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::arbitrary(rng);
                }
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` strategy with length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run `cases` deterministic cases of a property. Used by the
/// [`proptest!`] expansion; not part of the public proptest API.
pub fn run_cases(name: &str, cases: u32, mut case: impl FnMut(&mut TestRng, u64)) {
    for i in 0..cases as u64 {
        let mut rng = TestRng::for_case(name, i);
        case(&mut rng, i);
    }
}

/// Property-test macro: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |rng, case| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    let describe = || {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&::std::format!(
                            "\n  {} = {:?}", stringify!($arg), $arg));)+
                        s
                    };
                    let _ = &describe;
                    $crate::with_case_context(stringify!($name), case, describe(), || $body);
                });
            }
        )*
    };
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default());
            $(#[test] fn $name($($arg in $strat),+) $body)*);
    };
}

/// Run a case body, decorating any panic with the case number and the
/// generated inputs (the no-shrinking replacement for a minimal repro).
pub fn with_case_context<R>(name: &str, case: u64, inputs: String, body: impl FnOnce() -> R) -> R {
    struct Context {
        name: String,
        case: u64,
        inputs: String,
    }
    impl Drop for Context {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest case failed: {} (case {}), inputs:{}",
                    self.name, self.case, self.inputs
                );
            }
        }
    }
    let _ctx = Context {
        name: name.to_string(),
        case,
        inputs,
    };
    body()
}

/// `assert!` inside a property (no early-return semantics here; panics).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0u32..=4, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(u32::from(b) <= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_in_range(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            Just(99u64),
        ]) {
            prop_assert!(x == 99u64 || (x % 2u64 == 0u64 && x < 20u64));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        super::run_cases("det", 8, |rng, _| a.push(rng.next_u64()));
        super::run_cases("det", 8, |rng, _| b.push(rng.next_u64()));
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
