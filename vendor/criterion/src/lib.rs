//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the criterion 0.5 API surface the workspace's
//! benches use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! [`BenchmarkId`] and [`BatchSize`] — with plain wall-clock timing:
//! each benchmark is warmed up briefly, then sampled, and the mean
//! time per iteration is printed. No statistics files, no HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How long each benchmark is measured for (after a short warm-up).
const MEASURE_TARGET: Duration = Duration::from_millis(300);
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    /// (total duration, iterations) samples collected by `iter*`.
    sample: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters.max(1) as f64;
        let n = ((MEASURE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.sample = Some((start.elapsed(), n));
    }

    /// Measure `routine` over fresh inputs built by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        let mut measured = Duration::ZERO;
        while warm_start.elapsed() < WARMUP_TARGET {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        let per_iter = measured.as_secs_f64() / iters.max(1) as f64;
        let n = ((MEASURE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
        }
        self.sample = Some((total, n));
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { sample: None };
    f(&mut b);
    match b.sample {
        Some((total, iters)) => {
            let per = total.as_secs_f64() / iters.max(1) as f64;
            println!(
                "{label:<60} time: {:>12}  ({iters} iters)",
                format_time(per)
            );
        }
        None => println!("{label:<60} (no measurement)"),
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { _c: self, name }
    }

    /// Benchmark a single function.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures() {
        let mut b = Bencher { sample: None };
        b.iter(|| 2 + 2);
        let (total, iters) = b.sample.unwrap();
        assert!(iters >= 1);
        assert!(total.as_nanos() > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher { sample: None };
        b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        assert!(b.sample.is_some());
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
