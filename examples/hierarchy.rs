//! The consensus hierarchy from faulty objects (Section 5.2): `f` CAS
//! objects with bounded overriding faults have consensus number exactly
//! `f + 1` — we measure the boundary for f = 1..3.
//!
//! ```text
//! cargo run --release --example hierarchy
//! ```

use functional_faults::adversary::{consensus_number_scan, SafetyVerdict};
use functional_faults::sim::ExplorerConfig;

fn main() {
    let config = ExplorerConfig {
        max_states: 500_000,
        max_depth: 50_000,
        stop_at_first_violation: true,
        threads: 1,
    };

    println!("consensus number of f faulty CAS objects (overriding, t = 1):\n");
    println!("{:>3} {:>3}  {:<34} paper says", "f", "n", "verdict");
    for f in 1..=3u64 {
        let scan = consensus_number_scan(f, 1, f as usize + 2, config);
        let mut measured = 1usize;
        for (n, verdict) in &scan {
            let verdict_str = match verdict {
                SafetyVerdict::VerifiedExhaustive => "safe (verified exhaustively)".to_string(),
                SafetyVerdict::NoViolationFound { trials } => {
                    format!("safe (no violation in {trials} trials)")
                }
                SafetyVerdict::Violated => "VIOLATED (covering attack)".to_string(),
                SafetyVerdict::Inconclusive => "inconclusive".to_string(),
            };
            if verdict.safe() {
                measured = *n;
            }
            let expected = if *n as u64 <= f + 1 {
                "safe"
            } else {
                "impossible"
            };
            println!("{f:>3} {n:>3}  {verdict_str:<34} {expected}");
        }
        println!(
            "  ⇒ measured consensus number: {measured} (paper: f + 1 = {})\n",
            f + 1
        );
        assert_eq!(measured as u64, f + 1);
    }
    println!(
        "every Herlihy-hierarchy level is populated by a faulty setting — as the paper claims."
    );
}
