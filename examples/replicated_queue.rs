//! End-to-end universality: a replicated FIFO queue whose consensus
//! cells run on faulty CAS hardware — robust cells keep every replica
//! consistent, naive cells visibly corrupt the replication.
//!
//! ```text
//! cargo run --release --example replicated_queue
//! ```

use functional_faults::universal::{
    logs_consistent, CellFactory, FifoQueue, Handle, NaiveFaultyCells, RobustCells, UniversalLog,
    EMPTY,
};
use std::sync::Arc;

/// Three producers enqueue tagged items concurrently; a consumer then
/// drains. Returns (replica logs consistent, drained items).
fn run_queue(factory: Arc<dyn CellFactory>) -> (bool, Vec<u64>) {
    let core = Arc::new(UniversalLog::new(factory));
    let logs: Vec<Vec<u32>> = std::thread::scope(|s| {
        (0..3u16)
            .map(|p| {
                let core = Arc::clone(&core);
                s.spawn(move || {
                    let mut h = Handle::new(core, p, FifoQueue::default());
                    for i in 0..5u64 {
                        h.invoke(FifoQueue::enq_op(100 * (p as u64 + 1) + i));
                    }
                    h.applied_log().to_vec()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let views: Vec<&[u32]> = logs.iter().map(|l| l.as_slice()).collect();
    let consistent = logs_consistent(&views);

    let mut consumer = Handle::new(core, 99, FifoQueue::default());
    let mut drained = Vec::new();
    loop {
        let item = consumer.invoke(FifoQueue::deq_op());
        if item == EMPTY {
            break;
        }
        drained.push(item);
    }
    (consistent, drained)
}

fn check(label: &str, factory: Arc<dyn CellFactory>) {
    let (consistent, drained) = run_queue(factory);
    let mut sorted = drained.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let exactly_once = drained.len() == 15 && sorted.len() == 15;
    println!("{label:<24} replica logs consistent: {consistent:<5}  items drained: {:>2}/15 (exactly-once: {exactly_once})",
        drained.len());
}

fn main() {
    println!("replicated FIFO queue: 3 producers × 5 items, then drain\n");
    check("reliable cells", Arc::new(RobustCells::new(1, 0.0, 1)));
    check(
        "robust cells (50% faults)",
        Arc::new(RobustCells::new(1, 0.5, 2)),
    );
    check(
        "robust cells (f = 2, 80%)",
        Arc::new(RobustCells::new(2, 0.8, 3)),
    );

    // Naive cells: run several seeds; corruption is probabilistic.
    println!("\nnaive cells (Herlihy straight over faulty CAS, 80% faults):");
    let mut corrupted = 0;
    for seed in 0..10 {
        let (consistent, drained) = run_queue(Arc::new(NaiveFaultyCells::new(0.8, seed)));
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if !consistent || drained.len() != 15 || sorted.len() != 15 {
            corrupted += 1;
        }
    }
    println!(
        "  {corrupted}/10 trials corrupted — the cells are not consensus, so replication breaks"
    );
    println!("\nrobust consensus ⇒ robust objects (Herlihy universality on faulty hardware).");
}
