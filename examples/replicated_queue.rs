//! End-to-end universality: a replicated FIFO queue whose consensus
//! cells run on faulty CAS hardware — robust cells keep every replica
//! consistent, naive cells visibly corrupt the replication.
//!
//! The logs are checkpointed: every `INTERVAL` decided slots the
//! replicas agree (through a consensus cell, like any operation) on a
//! snapshot, and the decided prefix below it is physically freed once
//! every live replica has passed it — so the memory a log retains stays
//! bounded no matter how long the queue lives.
//!
//! ```text
//! cargo run --release --example replicated_queue
//! ```

use functional_faults::universal::{
    digests_consistent, log_windows_consistent, CellFactory, FifoQueue, Handle, NaiveFaultyCells,
    RobustCells, UniversalLog, EMPTY,
};
use std::sync::Arc;

/// Checkpoint interval (slots) for every queue log in this example.
const INTERVAL: usize = 8;

/// A replica's view for cross-replica comparison: start slot, applied
/// log window, and the digests carried across checkpoint boundaries.
type ReplicaView = (usize, Vec<u32>, Vec<(usize, u64)>);

/// Three producers enqueue tagged items concurrently; a consumer then
/// drains. Returns (replica logs consistent, drained items, retained
/// log length, truncated prefix).
fn run_queue(factory: Arc<dyn CellFactory>) -> (bool, Vec<u64>, usize, usize) {
    let core = Arc::new(UniversalLog::new(factory).checkpoint_every(INTERVAL));
    // With truncation on, raw applied logs are no longer comparable by
    // index (a replica that joins after a checkpoint starts from the
    // snapshot, not slot 0) — replicas are compared slot-by-slot over
    // their overlapping windows, plus through the rolling digests they
    // carry across each agreed checkpoint boundary.
    let views: Vec<ReplicaView> = std::thread::scope(|s| {
        (0..3u16)
            .map(|p| {
                let core = Arc::clone(&core);
                s.spawn(move || {
                    let mut h = Handle::new(core, p, FifoQueue::default());
                    for i in 0..5u64 {
                        h.invoke(FifoQueue::enq_op(100 * (p as u64 + 1) + i));
                    }
                    (
                        h.start_slot(),
                        h.applied_log().to_vec(),
                        h.boundary_digests().to_vec(),
                    )
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let windows: Vec<(usize, &[u32])> = views.iter().map(|(s, l, _)| (*s, l.as_slice())).collect();
    let digests: Vec<&[(usize, u64)]> = views.iter().map(|(_, _, d)| d.as_slice()).collect();
    let consistent = log_windows_consistent(&windows) && digests_consistent(&digests);

    // The consumer joins late: it bootstraps from the agreed snapshot
    // (if one was installed) and replays only the retained tail.
    let mut consumer = Handle::new(core.clone(), 99, FifoQueue::default());
    let mut drained = Vec::new();
    loop {
        let item = consumer.invoke(FifoQueue::deq_op());
        if item == EMPTY {
            break;
        }
        drained.push(item);
    }
    (
        consistent && !core.divergence_detected(),
        drained,
        core.retained_len(),
        core.truncated_prefix(),
    )
}

fn check(label: &str, factory: Arc<dyn CellFactory>) {
    let (consistent, drained, retained, truncated) = run_queue(factory);
    let mut sorted = drained.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let exactly_once = drained.len() == 15 && sorted.len() == 15;
    println!("{label:<24} replica logs consistent: {consistent:<5}  items drained: {:>2}/15 (exactly-once: {exactly_once})  log: {truncated} slots freed, {retained} retained",
        drained.len());
    // The checkpoint guarantee: once the last live replica has applied
    // every decided slot, the log retains less than one interval.
    assert!(
        retained < INTERVAL,
        "retained log length {retained} not bounded by interval {INTERVAL}"
    );
    assert!(truncated > 0, "checkpointing never freed a slot");
}

fn main() {
    println!(
        "replicated FIFO queue: 3 producers × 5 items, then drain (checkpoint every {INTERVAL} slots)\n"
    );
    check("reliable cells", Arc::new(RobustCells::new(1, 0.0, 1)));
    check(
        "robust cells (50% faults)",
        Arc::new(RobustCells::new(1, 0.5, 2)),
    );
    check(
        "robust cells (f = 2, 80%)",
        Arc::new(RobustCells::new(2, 0.8, 3)),
    );

    // Naive cells: run several seeds; corruption is probabilistic. No
    // retention assertion here — divergence evidence permanently
    // disables truncation, by design.
    println!("\nnaive cells (Herlihy straight over faulty CAS, 80% faults):");
    let mut corrupted = 0;
    for seed in 0..10 {
        let (consistent, drained, _, _) = run_queue(Arc::new(NaiveFaultyCells::new(0.8, seed)));
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if !consistent || drained.len() != 15 || sorted.len() != 15 {
            corrupted += 1;
        }
    }
    println!(
        "  {corrupted}/10 trials corrupted — the cells are not consensus, so replication breaks"
    );
    println!("\nrobust consensus ⇒ robust objects (Herlihy universality on faulty hardware).");
}
