//! Quickstart: build a reliable consensus object on unreliable hardware.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! We create CAS objects that suffer *overriding faults* (their
//! comparison erroneously succeeds, so they overwrite values they should
//! have kept), pick the right construction from the paper for the fault
//! budget, and run it on real threads.

use functional_faults::cas::{FaultyCasArray, ProbabilisticPolicy};
use functional_faults::consensus::{build, recommend, run_native};
use functional_faults::spec::{Bound, Input};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // The fault environment: up to f = 2 faulty objects, each committing
    // at most t = 2 overriding faults, and n = 3 participating threads.
    let (f, t, n) = (2u64, Bound::Finite(2), Bound::Finite(3));

    // Ask the paper which construction fits (Section 4's case analysis).
    let rec = recommend(f, t, n);
    println!(
        "recommended construction: {:?} using {} CAS object(s), guaranteeing {}",
        rec.kind, rec.objects, rec.tolerance
    );

    // Build the unreliable hardware: every object may be faulty, faulting
    // 30% of the time at each opportunity, within its budget.
    let ensemble = Arc::new(
        FaultyCasArray::builder(rec.objects)
            .faulty_first(f as usize)
            .per_object(t)
            .policy(ProbabilisticPolicy::new(0.3, 42))
            .build(),
    );
    let protocol = build(rec, Arc::clone(&ensemble), f, t);

    // Three threads with different inputs race to decide.
    let inputs: Vec<Input> = vec![Input(111), Input(222), Input(333)];
    let report = run_native(protocol, &inputs, Duration::from_secs(5));

    for o in &report.outcomes {
        println!(
            "  {} proposed {} → decided {}",
            o.process,
            o.input,
            o.decision
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!(
        "consensus verdict: {}",
        if report.ok() {
            "OK (agreement + validity)"
        } else {
            "VIOLATED"
        }
    );

    // Inspect what the hardware actually did.
    let history = ensemble.history();
    println!(
        "hardware report: {} operations, {} faulty object(s), worst object faulted {} time(s)",
        history.len(),
        history.faulty_object_count(),
        history.max_faults_per_object()
    );
    assert!(report.ok(), "the construction must mask the faults");
}
