//! A tour of the CAS fault taxonomy (Sections 3.3–3.4 of the paper):
//! inject each fault kind, watch what the naive protocol does, and see
//! how each record is classified against the Hoare triples.
//!
//! ```text
//! cargo run --release --example fault_injection_lab
//! ```

use functional_faults::cas::{AlwaysPolicy, CasEnsemble, FaultyCasArray, FirstKPolicy};
use functional_faults::consensus::{Consensus, HerlihyConsensus, SilentRetryConsensus};
use functional_faults::spec::{
    classify_cas, Bound, CasClassification, FaultKind, Input, ObjectId, BOTTOM,
};
use std::sync::Arc;

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    // ---------------------------------------------------------------
    banner("overriding fault: the comparison erroneously succeeds");
    let ensemble = Arc::new(
        FaultyCasArray::builder(1)
            .kind(FaultKind::Overriding)
            .faulty_first(1)
            .per_object(Bound::Finite(1))
            .policy(AlwaysPolicy)
            .build(),
    );
    println!(
        "CAS(O0, ⊥, 10) → old = {:?}  (correct: cell was ⊥)",
        ensemble.cas(ObjectId(0), BOTTOM, 10)
    );
    println!("CAS(O0, ⊥, 20) → old = 10   (FAULT: comparison should fail, but 20 is written)");
    let _ = ensemble.cas(ObjectId(0), BOTTOM, 20);
    let probe = ensemble.cas(ObjectId(0), 20, 20);
    println!("probe: the cell now holds {probe} — the override landed");
    for e in ensemble.history().events() {
        println!("  audit: {:?} → {:?}", e.record, classify_cas(&e.record));
    }

    // ---------------------------------------------------------------
    banner("one override breaks the naive (Herlihy) protocol for n = 3");
    let ensemble = Arc::new(
        FaultyCasArray::builder(1)
            .faulty_first(1)
            .per_object(Bound::Finite(1))
            .policy(AlwaysPolicy)
            .build(),
    );
    let naive = HerlihyConsensus::new(Arc::clone(&ensemble));
    let d0 = naive.decide(Input(1));
    let d1 = naive.decide(Input(2));
    let d2 = naive.decide(Input(3));
    println!("three sequential deciders: {d0}, {d1}, {d2}");
    println!(
        "agreement: {}",
        if d0 == d1 && d1 == d2 {
            "held"
        } else {
            "BROKEN (as the paper predicts)"
        }
    );

    // ---------------------------------------------------------------
    banner("silent fault: the write is dropped — retries recover (bounded t)");
    let ensemble = Arc::new(
        FaultyCasArray::builder(1)
            .kind(FaultKind::Silent)
            .faulty_first(1)
            .per_object(Bound::Finite(3))
            .policy(FirstKPolicy::new(3))
            .build(),
    );
    let retry = SilentRetryConsensus::new(Arc::clone(&ensemble), 3);
    let d = retry.decide(Input(7));
    println!(
        "decided {d} after riding out {} silent fault(s)",
        ensemble.stats().total_observable()
    );

    // ---------------------------------------------------------------
    banner("invisible fault: the returned old value lies");
    let ensemble = Arc::new(
        FaultyCasArray::builder(1)
            .kind(FaultKind::Invisible)
            .faulty_first(1)
            .per_object(Bound::Finite(1))
            .policy(FirstKPolicy::new(2))
            .build(),
    );
    let _ = ensemble.cas(ObjectId(0), BOTTOM, 10); // match: refunded
    let lied = ensemble.cas(ObjectId(0), 777, 20); // cell holds 10; reports 777
    println!("CAS(O0, 777, 20) reported old = {lied} although the cell held 10");

    // ---------------------------------------------------------------
    banner("arbitrary fault: junk is written");
    let ensemble = Arc::new(
        FaultyCasArray::builder(1)
            .kind(FaultKind::Arbitrary)
            .faulty_first(1)
            .per_object(Bound::Finite(1))
            .policy(AlwaysPolicy)
            .build(),
    );
    let _ = ensemble.cas(ObjectId(0), BOTTOM, 10);
    let junk = ensemble.cas(ObjectId(0), BOTTOM, 11);
    println!("after the fault the cell held {junk:#x} — an arbitrary word");
    let kinds: Vec<CasClassification> = ensemble
        .history()
        .events()
        .iter()
        .map(|e| classify_cas(&e.record))
        .collect();
    println!("audit trail: {kinds:?}");

    // ---------------------------------------------------------------
    banner("taxonomy summary (Section 3.4)");
    for kind in FaultKind::ALL {
        println!(
            "  {kind:<14} responsive: {:<5}  reducible to data fault: {:<5}  Φ' = {}",
            kind.responsive(),
            kind.reducible_to_data_fault(),
            kind.deviating_postcondition()
        );
    }
}
