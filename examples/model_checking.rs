//! Mechanical proofs: exhaustively verify the paper's constructions at
//! small sizes, and exhibit the lower-bound violations as concrete,
//! replayable executions.
//!
//! ```text
//! cargo run --release --example model_checking
//! ```

use functional_faults::adversary::render_witness;
use functional_faults::consensus::{cascades, one_shots, staged_machines};
use functional_faults::sim::{
    default_threads, explore_parallel, find_critical_state, ExplorerConfig, FaultPlan, Heap,
    SimState,
};
use functional_faults::spec::{Bound, Input};

fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(|i| Input(10 * (i + 1))).collect()
}

fn main() {
    // All cores by default; FF_EXPLORER_THREADS=1 forces sequential.
    let config = ExplorerConfig {
        threads: default_threads(),
        ..ExplorerConfig::default()
    };
    println!("explorer threads: {}\n", config.threads);

    // -----------------------------------------------------------------
    println!("== Theorem 4: n = 2, one object, UNBOUNDED overriding faults ==");
    let plan = FaultPlan::overriding(1, Bound::Unbounded);
    let state = SimState::new(one_shots(&inputs(2)), Heap::new(1, 0), plan);
    let report = explore_parallel(state, config);
    println!(
        "explored {} states, {} terminals → {}",
        report.states_expanded,
        report.terminals,
        if report.verified() {
            "VERIFIED: consensus holds on every execution"
        } else {
            "violated!"
        }
    );

    // -----------------------------------------------------------------
    println!("\n== Theorem 5 (f = 1): 2 objects, 1 unboundedly faulty, n = 3 ==");
    let plan = FaultPlan::overriding(1, Bound::Unbounded);
    let state = SimState::new(cascades(&inputs(3), 1), Heap::new(2, 0), plan);
    let report = explore_parallel(state, config);
    println!(
        "explored {} states → {}",
        report.states_expanded,
        if report.verified() {
            "VERIFIED"
        } else {
            "violated!"
        }
    );

    // -----------------------------------------------------------------
    println!("\n== Theorem 6 (f = 1, t = 2): 1 faulty-only object, n = 2 ==");
    let plan = FaultPlan::overriding(1, Bound::Finite(2));
    let state = SimState::new(staged_machines(&inputs(2), 1, 2), Heap::new(1, 0), plan);
    let report = explore_parallel(state, config);
    println!(
        "explored {} states → {}",
        report.states_expanded,
        if report.verified() {
            "VERIFIED"
        } else {
            "violated!"
        }
    );

    // -----------------------------------------------------------------
    println!("\n== Theorem 18: the same one-object environment with n = 3 breaks ==");
    let plan = FaultPlan::overriding(1, Bound::Unbounded);
    let state = SimState::new(one_shots(&inputs(3)), Heap::new(1, 0), plan.clone());
    let report = explore_parallel(state, config);
    match &report.violation {
        Some(witness) => {
            println!(
                "violating execution found ({} steps); replaying:\n",
                witness.choices.len()
            );
            println!(
                "{}",
                render_witness(witness, one_shots(&inputs(3)), Heap::new(1, 0), &plan)
            );
        }
        None => println!("no violation found (unexpected)"),
    }

    // -----------------------------------------------------------------
    println!("== Valency analysis (the impossibility proofs' vocabulary) ==");
    let state = SimState::new(one_shots(&inputs(2)), Heap::new(1, 0), FaultPlan::none());
    match find_critical_state(&state, 100_000) {
        Some(crit) => {
            println!(
                "critical state found after {} step(s): reachable decisions {:?}",
                crit.path.len(),
                crit.reachable
            );
            for (pid, op) in &crit.pending_ops {
                println!("  pending: {pid} about to run {op:?}");
            }
            for (choice, v) in &crit.successor_valencies {
                println!("  if {} steps next → protocol commits to {v}", choice.pid);
            }
        }
        None => println!("no critical state (initial state univalent)"),
    }
}
