//! # functional-faults
//!
//! A comprehensive Rust reproduction of **"Functional Faults"**
//! (Gali Sheffi and Erez Petrank, SPAA 2020): the functional-fault model,
//! wait-free consensus from CAS objects with *overriding* faults, the
//! matching impossibility results, and the machinery to verify all of it
//! mechanically — a deterministic simulator with an exhaustive model
//! checker, native-thread fault injection over std atomics, the proofs'
//! adversaries, and a Herlihy universal construction demonstrating
//! end-to-end fault-tolerant replication.
//!
//! This crate is the umbrella: it re-exports the workspace members.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`spec`] | `ff-spec` | Hoare triples, `⟨O, Φ'⟩`-faults, `(f, t, n)`-tolerance, consensus checker |
//! | [`sim`] | `ff-sim` | Deterministic simulator, schedulers, exhaustive explorer, valency analysis |
//! | [`cas`] | `ff-cas` | Native CAS ensembles with fault injection at the linearization point |
//! | [`consensus`] | `ff-consensus` | Figures 1–3 as library protocols (blocking + step-machine forms) |
//! | [`adversary`] | `ff-adversary` | Theorem 18/19 adversaries, data-fault separation, hierarchy probes |
//! | [`universal`] | `ff-universal` | Replicated objects over fault-tolerant consensus cells |
//! | [`workload`] | `ff-workload` | The E1–E14 experiment harness and table rendering |
//! | [`store`] | `ff-store` | Sharded replicated KV store with checkpointed logs, fault knobs, metrics, soak harness (E15), unified `Kv` client API |
//! | [`net`] | `ff-net` | Binary wire protocol + std-only TCP server/client for the store; network soak (E16) |
//!
//! ## Quickstart
//!
//! ```
//! use functional_faults::consensus::{CascadeConsensus, Consensus};
//! use functional_faults::cas::{FaultyCasArray, AlwaysPolicy};
//! use functional_faults::spec::{Bound, Input};
//! use std::sync::Arc;
//!
//! // Hardware: 3 CAS objects, 2 of which override unboundedly.
//! let ensemble = Arc::new(
//!     FaultyCasArray::builder(3)
//!         .faulty_first(2)
//!         .per_object(Bound::Unbounded)
//!         .policy(AlwaysPolicy)
//!         .build(),
//! );
//! // Theorem 5: f + 1 = 3 objects tolerate f = 2 faulty ones.
//! let consensus = CascadeConsensus::new(ensemble, 2);
//! assert_eq!(consensus.decide(Input(7)), consensus.decide(Input(9)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ff_adversary as adversary;
pub use ff_cas as cas;
pub use ff_consensus as consensus;
pub use ff_net as net;
pub use ff_sim as sim;
pub use ff_spec as spec;
pub use ff_store as store;
pub use ff_universal as universal;
pub use ff_workload as workload;
